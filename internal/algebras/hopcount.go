package algebras

import (
	"fmt"

	"repro/internal/core"
)

// HopCount is the RIP-style bounded shortest-paths algebra: distances range
// over {0, 1, ..., Limit} ∪ {∞}, and any distance that would exceed Limit
// becomes invalid. RIP uses Limit = 15 (16 counts as unreachable). The
// carrier is finite, so with weights ≥ 1 the algebra satisfies every
// precondition of Theorem 7 and converges absolutely even from states full
// of stale garbage — this is experiment E5.
type HopCount struct {
	// Limit is the largest representable distance; larger becomes ∞.
	Limit NatInf
}

// RIP returns the classic hop-count algebra with limit 15.
func RIP() HopCount { return HopCount{Limit: 15} }

// clamp maps out-of-range distances to ∞.
func (h HopCount) clamp(a NatInf) NatInf {
	if a.IsInf() || a > h.Limit {
		return Inf
	}
	return a
}

// Choice implements ⊕ = min.
func (h HopCount) Choice(a, b NatInf) NatInf { return h.clamp(a).Min(h.clamp(b)) }

// Trivial implements 0.
func (HopCount) Trivial() NatInf { return 0 }

// Invalid implements ∞.
func (HopCount) Invalid() NatInf { return Inf }

// Equal implements route equality (distances beyond the limit are all ∞).
func (h HopCount) Equal(a, b NatInf) bool { return h.clamp(a) == h.clamp(b) }

// Format implements route rendering.
func (h HopCount) Format(r NatInf) string { return h.clamp(r).String() }

// Universe implements core.Enumerable: the full finite carrier.
func (h HopCount) Universe() []NatInf {
	out := make([]NatInf, 0, int(h.Limit)+2)
	for d := NatInf(0); d <= h.Limit; d++ {
		out = append(out, d)
	}
	return append(out, Inf)
}

// AddEdge returns f_w(a) = w + a, clamped to ∞ beyond the limit. With
// w ≥ 1 the edge is strictly increasing. The returned edge is a named
// type (not a closure) so the columnar backend can compile it into a
// batched kernel; its behaviour and label are unchanged.
func (h HopCount) AddEdge(w NatInf) core.Edge[NatInf] {
	return hopAddEdge{h: h, w: w}
}

// hopAddEdge is the compiled-recognisable form of AddEdge.
type hopAddEdge struct {
	h HopCount
	w NatInf
}

// Apply implements core.Edge: f_w(a) = clamp(clamp(a) + w).
func (e hopAddEdge) Apply(a NatInf) NatInf { return e.h.clamp(e.h.clamp(a).Add(e.w)) }

// Label implements core.Edge.
func (e hopAddEdge) Label() string { return fmt.Sprintf("+%s", e.w) }

// FilterPredicate is a condition evaluated against a route by a conditional
// policy edge, mirroring the predicate P of Equation 2.
type FilterPredicate struct {
	Name string
	Test func(NatInf) bool
}

// ConditionalEdge returns the route-map edge of Equation 2 specialised to
// filtering: f(a) = if P(a) then (w + a) else ∞. Such edges are what makes
// a distance-vector protocol "policy rich": they violate distributivity
// (experiment E1 exhibits the counterexample automatically) while remaining
// strictly increasing, so Theorem 7 still guarantees convergence.
func (h HopCount) ConditionalEdge(w NatInf, p FilterPredicate) core.Edge[NatInf] {
	return hopCondEdge{h: h, w: w, p: p}
}

// hopCondEdge is the compiled-recognisable form of ConditionalEdge.
type hopCondEdge struct {
	h HopCount
	w NatInf
	p FilterPredicate
}

// Apply implements core.Edge: f(a) = if P(a) then clamp(a + w) else ∞.
func (e hopCondEdge) Apply(a NatInf) NatInf {
	a = e.h.clamp(a)
	if a.IsInf() {
		return Inf
	}
	if !e.p.Test(a) {
		return Inf
	}
	return e.h.clamp(a.Add(e.w))
}

// Label implements core.Edge.
func (e hopCondEdge) Label() string {
	return fmt.Sprintf("if %s then +%s else ∞", e.p.Name, e.w)
}

// DistanceAtMost is the predicate "route is no longer than k", a typical
// filtering condition.
func DistanceAtMost(k NatInf) FilterPredicate {
	return FilterPredicate{
		Name: fmt.Sprintf("d≤%s", k),
		Test: func(a NatInf) bool { return a <= k },
	}
}

// DistanceEven is a deliberately quirky predicate used by tests to build
// distributivity counterexamples.
func DistanceEven() FilterPredicate {
	return FilterPredicate{
		Name: "even(d)",
		Test: func(a NatInf) bool { return a%2 == 0 },
	}
}
