package algebras

import "repro/internal/core"

// This file packages the lexicographic products the paper's discussion
// leans on: shortest-widest paths (the Section 8.1 example of an
// increasing, non-distributive algebra that nevertheless converges
// quickly) and stratified shortest paths (the Griffin 2012 algebra that
// Section 7 cites as a subset of the safe-by-design language).

// ShortestWidest is the widest-then-shortest lexicographic product: pick
// the widest route, breaking bandwidth ties with hop count. The
// bandwidth component is only weakly increasing (capping above the
// current width is a no-op) while the hop component strictly increases,
// so the product is strictly increasing — Section 8.1's observation that
// it therefore converges fast despite non-distributivity.
type ShortestWidest struct {
	lex Lex[NatInf, NatInf]
	// HopLimit bounds the hop-count coordinate, keeping the carrier
	// finite for Theorem 7.
	HopLimit NatInf
}

// NewShortestWidest builds the algebra with the given hop bound.
func NewShortestWidest(hopLimit NatInf) ShortestWidest {
	return ShortestWidest{
		lex:      NewLex[NatInf, NatInf](WidestPaths{}, HopCount{Limit: hopLimit}),
		HopLimit: hopLimit,
	}
}

// SWRoute is a shortest-widest route: bottleneck bandwidth plus hops.
type SWRoute = Pair[NatInf, NatInf]

// Choice implements ⊕.
func (a ShortestWidest) Choice(x, y SWRoute) SWRoute { return a.lex.Choice(x, y) }

// Trivial implements 0: infinite bandwidth, zero hops.
func (a ShortestWidest) Trivial() SWRoute { return a.lex.Trivial() }

// Invalid implements ∞: zero bandwidth.
func (a ShortestWidest) Invalid() SWRoute { return a.lex.Invalid() }

// Equal implements route equality.
func (a ShortestWidest) Equal(x, y SWRoute) bool { return a.lex.Equal(x, y) }

// Format implements route rendering.
func (a ShortestWidest) Format(r SWRoute) string { return a.lex.Format(r) }

// Edge returns the weight of a link with capacity cap: bandwidth is
// capped, hop count increments.
func (a ShortestWidest) Edge(capacity NatInf) core.Edge[SWRoute] {
	w := WidestPaths{}
	h := HopCount{Limit: a.HopLimit}
	return a.lex.Edge(w.CapEdge(capacity), h.AddEdge(1))
}

// Universe implements core.Enumerable over the bandwidths that occur in a
// network; callers pass the distinct capacities (0 and ∞ are added).
func (a ShortestWidest) UniverseOver(capacities []NatInf) []SWRoute {
	bw := append([]NatInf{Inf}, capacities...)
	var out []SWRoute
	out = append(out, a.Invalid())
	hops := HopCount{Limit: a.HopLimit}.Universe()
	for _, b := range bw {
		if b == 0 {
			continue
		}
		for _, h := range hops {
			out = append(out, SWRoute{First: b, Second: h})
		}
	}
	return out
}

// Stratified is the stratified shortest-paths algebra (Griffin 2012):
// an administrative level dominates, hop count breaks ties. Levels model
// "stratified" policy classes — e.g. customer routes below peer routes
// below provider routes — which is exactly how gaorexford embeds into the
// framework.
type Stratified struct {
	lex Lex[NatInf, NatInf]
	// Levels is the number of strata; HopLimit bounds hops.
	Levels, HopLimit NatInf
}

// NewStratified builds the algebra.
func NewStratified(levels, hopLimit NatInf) Stratified {
	return Stratified{
		lex:      NewLex[NatInf, NatInf](HopCount{Limit: levels}, HopCount{Limit: hopLimit}),
		Levels:   levels,
		HopLimit: hopLimit,
	}
}

// StratRoute is a stratified route: (level, hops).
type StratRoute = Pair[NatInf, NatInf]

// Choice implements ⊕.
func (a Stratified) Choice(x, y StratRoute) StratRoute { return a.lex.Choice(x, y) }

// Trivial implements 0: level 0, zero hops.
func (a Stratified) Trivial() StratRoute { return a.lex.Trivial() }

// Invalid implements ∞.
func (a Stratified) Invalid() StratRoute { return a.lex.Invalid() }

// Equal implements route equality.
func (a Stratified) Equal(x, y StratRoute) bool { return a.lex.Equal(x, y) }

// Format implements route rendering.
func (a Stratified) Format(r StratRoute) string { return a.lex.Format(r) }

// Universe implements core.Enumerable.
func (a Stratified) Universe() []StratRoute { return a.lex.Universe() }

// Edge returns a link weight that raises the level by levelUp (0 keeps
// the stratum) and adds one hop. Any positive levelUp or the hop
// increment keeps it strictly increasing.
func (a Stratified) Edge(levelUp NatInf) core.Edge[StratRoute] {
	lv := HopCount{Limit: a.Levels}
	h := HopCount{Limit: a.HopLimit}
	return a.lex.Edge(lv.AddEdge(levelUp), h.AddEdge(1))
}
