package algebras

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestNatInfArithmetic(t *testing.T) {
	if Inf.Add(1) != Inf || NatInf(1).Add(Inf) != Inf {
		t.Error("Inf must absorb addition")
	}
	if NatInf(2).Add(3) != 5 {
		t.Error("2+3 != 5")
	}
	if got := (Inf - 1).Add(Inf - 1); got != Inf {
		t.Errorf("near-overflow addition must saturate, got %v", got)
	}
	if NatInf(7).Min(3) != 3 || NatInf(7).Max(3) != 7 {
		t.Error("Min/Max broken")
	}
	if Inf.String() != "∞" || NatInf(4).String() != "4" {
		t.Error("String broken")
	}
}

func natSample() []NatInf {
	return []NatInf{0, 1, 2, 3, 5, 10, 100, Inf}
}

func TestShortestPathsLaws(t *testing.T) {
	alg := ShortestPaths{}
	s := core.Sample[NatInf]{
		Routes: natSample(),
		Edges:  []core.Edge[NatInf]{alg.AddEdge(1), alg.AddEdge(3)},
	}
	if err := core.CheckRequired[NatInf](alg, s); err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Property{core.Increasing, core.StrictlyIncreasing, core.Distributive} {
		if rep := core.Check[NatInf](alg, p, s); !rep.Holds {
			t.Errorf("shortest paths should satisfy %s: %s", p, rep.Counterexample)
		}
	}
}

func TestShortestPathsZeroWeightNotStrict(t *testing.T) {
	alg := ShortestPaths{}
	s := core.Sample[NatInf]{Routes: natSample(), Edges: []core.Edge[NatInf]{alg.AddEdge(0)}}
	if rep := core.Check[NatInf](alg, core.StrictlyIncreasing, s); rep.Holds {
		t.Error("zero-weight edges must fail strict increase")
	}
}

func TestLongestPathsLaws(t *testing.T) {
	alg := LongestPaths{}
	s := core.Sample[NatInf]{
		Routes: natSample(),
		Edges:  []core.Edge[NatInf]{alg.AddEdge(1), alg.AddEdge(2)},
	}
	if err := core.CheckRequired[NatInf](alg, s); err != nil {
		t.Fatal(err)
	}
	// The canonical non-increasing algebra: adding weight improves a route.
	if rep := core.Check[NatInf](alg, core.Increasing, s); rep.Holds {
		t.Error("longest paths must NOT be increasing")
	}
	if rep := core.Check[NatInf](alg, core.Distributive, s); !rep.Holds {
		t.Errorf("longest paths distributes: %s", rep.Counterexample)
	}
	// Table 2 distinguished elements are swapped.
	if alg.Trivial() != Inf || alg.Invalid() != 0 {
		t.Error("longest paths: 0 must be numeric ∞ and ∞ numeric 0")
	}
}

func TestWidestPathsLaws(t *testing.T) {
	alg := WidestPaths{}
	s := core.Sample[NatInf]{
		Routes: natSample(),
		Edges:  []core.Edge[NatInf]{alg.CapEdge(5), alg.CapEdge(50)},
	}
	if err := core.CheckRequired[NatInf](alg, s); err != nil {
		t.Fatal(err)
	}
	if rep := core.Check[NatInf](alg, core.Increasing, s); !rep.Holds {
		t.Errorf("widest paths is increasing: %s", rep.Counterexample)
	}
	// Not strictly: capping above the current width is a no-op.
	if rep := core.Check[NatInf](alg, core.StrictlyIncreasing, s); rep.Holds {
		t.Error("widest paths must not be strictly increasing")
	}
	if rep := core.Check[NatInf](alg, core.Distributive, s); !rep.Holds {
		t.Errorf("widest paths distributes: %s", rep.Counterexample)
	}
}

func TestMostReliableLaws(t *testing.T) {
	alg := MostReliable{}
	// Dyadic probabilities keep float products exact.
	s := core.Sample[float64]{
		Routes: []float64{0, 0.25, 0.5, 0.75, 1},
		Edges:  []core.Edge[float64]{alg.MulEdge(0.5), alg.MulEdge(0.25)},
	}
	if err := core.CheckRequired[float64](alg, s); err != nil {
		t.Fatal(err)
	}
	if rep := core.Check[float64](alg, core.StrictlyIncreasing, s); !rep.Holds {
		t.Errorf("×s with s<1 is strictly increasing: %s", rep.Counterexample)
	}
	// Multiplying by 1 is not strictly increasing.
	s.Edges = []core.Edge[float64]{alg.MulEdge(1)}
	if rep := core.Check[float64](alg, core.StrictlyIncreasing, s); rep.Holds {
		t.Error("×1 must fail strict increase")
	}
	if rep := core.Check[float64](alg, core.Increasing, s); !rep.Holds {
		t.Errorf("×1 is still increasing: %s", rep.Counterexample)
	}
}

func TestHopCountUniverse(t *testing.T) {
	alg := RIP()
	u := alg.Universe()
	if len(u) != 17 { // 0..15 plus ∞
		t.Fatalf("RIP universe has %d elements, want 17", len(u))
	}
	seen := map[NatInf]bool{}
	for _, r := range u {
		if seen[r] {
			t.Errorf("duplicate %v in universe", r)
		}
		seen[r] = true
	}
	if !seen[0] || !seen[15] || !seen[Inf] {
		t.Error("universe missing distinguished elements")
	}
}

func TestHopCountClamping(t *testing.T) {
	alg := RIP()
	e := alg.AddEdge(1)
	if got := e.Apply(15); got != Inf {
		t.Errorf("15+1 must clamp to ∞, got %v", got)
	}
	if got := e.Apply(14); got != 15 {
		t.Errorf("14+1 = %v", got)
	}
	if !alg.Equal(16, Inf) {
		t.Error("out-of-range distances must equal ∞")
	}
}

func TestHopCountTheorem7Preconditions(t *testing.T) {
	alg := RIP()
	s := core.UniverseSample[NatInf](alg, alg, []core.Edge[NatInf]{
		alg.AddEdge(1), alg.AddEdge(2),
		alg.ConditionalEdge(1, DistanceAtMost(7)),
	})
	if err := core.CheckRequired[NatInf](alg, s); err != nil {
		t.Fatal(err)
	}
	if rep := core.Check[NatInf](alg, core.StrictlyIncreasing, s); !rep.Holds {
		t.Fatalf("bounded hop count with filtering is strictly increasing: %s", rep.Counterexample)
	}
}

func TestConditionalEdgeBreaksDistributivityKeepsStrictIncrease(t *testing.T) {
	alg := RIP()
	s := core.UniverseSample[NatInf](alg, alg, []core.Edge[NatInf]{
		alg.ConditionalEdge(1, DistanceEven()),
	})
	if rep := core.Check[NatInf](alg, core.Distributive, s); rep.Holds {
		t.Error("parity filtering must break distributivity")
	}
	if rep := core.Check[NatInf](alg, core.StrictlyIncreasing, s); !rep.Holds {
		t.Errorf("parity filtering stays strictly increasing: %s", rep.Counterexample)
	}
}

func TestLexProductLaws(t *testing.T) {
	// Stratified shortest paths: levels (bounded) over hop count.
	levels := HopCount{Limit: 3}
	hops := HopCount{Limit: 7}
	lex := NewLex[NatInf, NatInf](levels, hops)
	edges := []core.Edge[Pair[NatInf, NatInf]]{
		lex.Edge(levels.AddEdge(0), hops.AddEdge(1)), // same level, +1 hop
		lex.Edge(levels.AddEdge(1), hops.AddEdge(1)), // up a level
	}
	s := core.Sample[Pair[NatInf, NatInf]]{Routes: lex.Universe(), Edges: edges}
	if err := core.CheckRequired[Pair[NatInf, NatInf]](lex, s); err != nil {
		t.Fatal(err)
	}
	if rep := core.Check[Pair[NatInf, NatInf]](lex, core.StrictlyIncreasing, s); !rep.Holds {
		t.Fatalf("stratified shortest paths is strictly increasing: %s", rep.Counterexample)
	}
}

func TestLexNormalisation(t *testing.T) {
	levels := HopCount{Limit: 3}
	hops := HopCount{Limit: 7}
	lex := NewLex[NatInf, NatInf](levels, hops)
	weird := Pair[NatInf, NatInf]{First: Inf, Second: 3}
	if !lex.Equal(weird, lex.Invalid()) {
		t.Error("invalid first component must normalise to ∞")
	}
	if got := lex.Format(weird); got != "(∞,∞)" {
		t.Errorf("Format(weird) = %s", got)
	}
}

func TestLexUniverseSize(t *testing.T) {
	levels := HopCount{Limit: 1} // {0,1,∞}
	hops := HopCount{Limit: 2}   // {0,1,2,∞}
	lex := NewLex[NatInf, NatInf](levels, hops)
	u := lex.Universe()
	// Invalid + (valid levels: 2) × (all hops incl ∞: 4) = 1 + 8.
	if len(u) != 9 {
		t.Errorf("universe size %d, want 9", len(u))
	}
}

func TestChoicePropertiesQuick(t *testing.T) {
	alg := ShortestPaths{}
	cfg := &quick.Config{
		MaxCount: 5000,
		Rand:     rand.New(rand.NewSource(7)),
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randNat(rng))
			}
		},
	}
	comm := func(a, b NatInf) bool { return alg.Choice(a, b) == alg.Choice(b, a) }
	sel := func(a, b NatInf) bool { c := alg.Choice(a, b); return c == a || c == b }
	assoc := func(a, b, c NatInf) bool {
		return alg.Choice(a, alg.Choice(b, c)) == alg.Choice(alg.Choice(a, b), c)
	}
	for name, fn := range map[string]any{"commutative": comm, "selective": sel, "associative": assoc} {
		if err := quick.Check(fn, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func randNat(rng *rand.Rand) NatInf {
	if rng.Intn(5) == 0 {
		return Inf
	}
	return NatInf(rng.Int63n(1 << 40))
}

func TestMEDNonAssociative(t *testing.T) {
	// Section 7: "the implementation of the MED attribute gives rise to
	// an ⊕ that is not associative". Verify the canonical triangle and
	// that the Table 1 checker catches it.
	alg := MED{}
	a, b, c := alg.AssociativityCounterexample()
	l := alg.Choice(a, alg.Choice(b, c))
	r := alg.Choice(alg.Choice(a, b), c)
	if alg.Equal(l, r) {
		t.Fatalf("counterexample did not fire: both orders give %s", alg.Format(l))
	}
	s := core.Sample[MEDRoute]{
		Routes: []MEDRoute{a, b, c, alg.Trivial(), alg.Invalid()},
		Edges:  []core.Edge[MEDRoute]{alg.Edge(1, 0, 1), alg.Edge(2, 0, 1)},
	}
	if rep := core.Check[MEDRoute](alg, core.Associative, s); rep.Holds {
		t.Error("checker must reject MED associativity")
	}
	// Selectivity and commutativity still hold — MED's failure is
	// specifically associativity.
	if rep := core.Check[MEDRoute](alg, core.Selective, s); !rep.Holds {
		t.Errorf("MED choice is still selective: %s", rep.Counterexample)
	}
	if rep := core.Check[MEDRoute](alg, core.Commutative, s); !rep.Holds {
		t.Errorf("MED choice is still commutative: %s", rep.Counterexample)
	}
}
