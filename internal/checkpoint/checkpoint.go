// Package checkpoint persists engine snapshots as versioned,
// CRC-checksummed files, so a long δ run can be preempted, survive a
// crash, or move between processes and resume bit-identically
// (engine.Snapshot / engine.Restore carry the equivalence proof; this
// package only has to round-trip the state faithfully).
//
// Routes cross the boundary through the same internal/wire codecs the
// live protocol uses. For interned carriers the codec pair
// (wire.InternedPolicyCodec, wire.InternedPathCodec) encodes through the
// reference representation and re-interns on decode, so a snapshot never
// leaks table-relative path ids: the restoring process's paths.Table
// assigns its own, and every algebra operation is indifferent to the
// renaming.
//
// Layout (all integers big-endian):
//
//	"DBFC" | u16 version | family (u16 len + bytes)
//	meta: u16 count, count × (u16 klen + key + u16 vlen + value), keys sorted
//	payload: flags u8 | u32 step | u32 n | u32 window | u32 lastChange
//	         stats (8 × i64) | u32 nstates | states (n·n cells of u32 len + bytes, row-major)
//	         [incremental: ver n·n × i32 | lastComp n × i32 | lastRead n·n × i32]
//	         [certified: n × u8]
//	u32 CRC-32 (IEEE) of everything above
//
// Every decode path is bounds-checked against the actual data and hard
// caps; corrupt or hostile input yields a clean error, never a panic or
// an unbounded allocation.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/wire"
)

// Version is the current format version; Decode rejects anything newer.
const Version = 1

var magic = []byte("DBFC")

// Hard caps against corrupt length fields; all far above anything the
// repository produces but small enough that a hostile header cannot
// drive allocation.
const (
	maxNodes  = 1 << 14
	maxString = 1 << 12
	maxMeta   = 256
	maxCell   = 1 << 20
)

// ErrChecksum reports a CRC mismatch: the file was truncated or a byte
// was flipped between Encode and Decode.
var ErrChecksum = errors.New("checkpoint: checksum mismatch")

// File is one checkpoint: a tagged, annotated engine snapshot. Family
// names the carrier's codec family (e.g. "natinf", "policy-interned") —
// Decode refuses to hand route bytes to the wrong codec. Meta is free
// annotation: dbfsim records the instance parameters there so -resume
// can rebuild the run without re-specifying flags.
type File[R any] struct {
	Family string
	Meta   map[string]string
	Snap   *engine.Snapshot[R]
}

// Encode renders the checkpoint, routes serialised with c.
func Encode[R any](c wire.Codec[R], f *File[R]) ([]byte, error) {
	s := f.Snap
	if s == nil {
		return nil, errors.New("checkpoint: nil snapshot")
	}
	if len(f.Family) > maxString || len(f.Meta) > maxMeta {
		return nil, errors.New("checkpoint: family or meta too large")
	}
	out := append([]byte(nil), magic...)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = appendString(out, f.Family)
	keys := make([]string, 0, len(f.Meta))
	for k := range f.Meta {
		if len(k) > maxString || len(f.Meta[k]) > maxString {
			return nil, fmt.Errorf("checkpoint: meta entry %q too large", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out = binary.BigEndian.AppendUint16(out, uint16(len(keys)))
	for _, k := range keys {
		out = appendString(out, k)
		out = appendString(out, f.Meta[k])
	}

	var flags byte
	if s.Incremental {
		flags |= 1
	}
	if s.Certified != nil {
		flags |= 2
	}
	out = append(out, flags)
	out = binary.BigEndian.AppendUint32(out, uint32(s.Step))
	out = binary.BigEndian.AppendUint32(out, uint32(s.N))
	out = binary.BigEndian.AppendUint32(out, uint32(s.Window))
	out = binary.BigEndian.AppendUint32(out, uint32(s.LastChange))
	for _, v := range []int{
		s.Stats.Steps, s.Stats.RowsComputed, s.Stats.RowsSkipped, s.Stats.CellsComputed,
		s.Stats.ConvergedAt, s.Stats.RowsRecycled, s.Stats.Retained, s.Stats.Events,
	} {
		out = binary.BigEndian.AppendUint64(out, uint64(int64(v)))
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(s.States)))
	for _, st := range s.States {
		for i := 0; i < s.N; i++ {
			for j := 0; j < s.N; j++ {
				b, err := c.Encode(st.Get(i, j))
				if err != nil {
					return nil, fmt.Errorf("checkpoint: encoding cell (%d,%d): %w", i, j, err)
				}
				out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
				out = append(out, b...)
			}
		}
	}
	if s.Incremental {
		out = appendInt32s(out, s.Ver)
		out = appendInt32s(out, s.LastComp)
		out = appendInt32s(out, s.LastRead)
	}
	for _, cert := range s.Certified {
		if cert {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out)), nil
}

// Header parses just the family tag and metadata — enough for a caller
// to decide which codec to decode with — after verifying the checksum,
// so a corrupt file is rejected before any of it is believed.
func Header(data []byte) (family string, meta map[string]string, err error) {
	cur, err := verified(data)
	if err != nil {
		return "", nil, err
	}
	return cur.header()
}

// Decode parses a checkpoint encoded with Encode, verifying the checksum
// and the family tag before decoding a single route.
func Decode[R any](c wire.Codec[R], data []byte, wantFamily string) (*File[R], error) {
	cur, err := verified(data)
	if err != nil {
		return nil, err
	}
	family, meta, err := cur.header()
	if err != nil {
		return nil, err
	}
	if family != wantFamily {
		return nil, fmt.Errorf("checkpoint: family %q, want %q", family, wantFamily)
	}
	f := &File[R]{Family: family, Meta: meta, Snap: &engine.Snapshot[R]{}}
	s := f.Snap
	flags := cur.u8()
	s.Incremental = flags&1 != 0
	certified := flags&2 != 0
	s.Step = int(cur.u32())
	s.N = int(cur.u32())
	s.Window = int(cur.u32())
	s.LastChange = int(cur.u32())
	for _, p := range []*int{
		&s.Stats.Steps, &s.Stats.RowsComputed, &s.Stats.RowsSkipped, &s.Stats.CellsComputed,
		&s.Stats.ConvergedAt, &s.Stats.RowsRecycled, &s.Stats.Retained, &s.Stats.Events,
	} {
		*p = int(int64(cur.u64()))
	}
	if cur.err == nil && (s.N < 1 || s.N > maxNodes) {
		return nil, fmt.Errorf("checkpoint: implausible node count %d", s.N)
	}
	nstates := int(cur.u32())
	if cur.err == nil && (nstates < 1 || nstates > s.Step+1) {
		return nil, fmt.Errorf("checkpoint: implausible state count %d for step %d", nstates, s.Step)
	}
	if cur.err != nil {
		return nil, cur.err
	}
	var zero R
	for b := 0; b < nstates; b++ {
		st := matrix.NewState(s.N, zero)
		for i := 0; i < s.N; i++ {
			for j := 0; j < s.N; j++ {
				cell := cur.bytes(maxCell)
				if cur.err != nil {
					return nil, cur.err
				}
				r, err := c.Decode(cell)
				if err != nil {
					return nil, fmt.Errorf("checkpoint: decoding cell (%d,%d) of state %d: %w", i, j, b, err)
				}
				st.Set(i, j, r)
			}
		}
		s.States = append(s.States, st)
	}
	if s.Incremental {
		s.Ver = cur.int32s(s.N * s.N)
		s.LastComp = cur.int32s(s.N)
		s.LastRead = cur.int32s(s.N * s.N)
	}
	if certified {
		s.Certified = make([]bool, s.N)
		for i := range s.Certified {
			s.Certified[i] = cur.u8() != 0
		}
	}
	if cur.err != nil {
		return nil, cur.err
	}
	if len(cur.b) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(cur.b))
	}
	return f, nil
}

// verified checks magic, version and CRC, returning a cursor over the
// bytes between the header and the checksum trailer.
func verified(data []byte) (*cursor, error) {
	if len(data) < len(magic)+2+4 {
		return nil, errors.New("checkpoint: file too short")
	}
	if string(data[:4]) != string(magic) {
		return nil, errors.New("checkpoint: bad magic (not a checkpoint file)")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrChecksum
	}
	cur := &cursor{b: body[4:]}
	if v := cur.u16(); cur.err == nil && v > Version {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads ≤ %d", v, Version)
	}
	return cur, cur.err
}

// cursor is a bounds-checked reader over the verified body; the first
// failed read sticks in err and every later read is a no-op.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = errors.New("checkpoint: truncated payload")
	}
}

func (c *cursor) u8() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil || len(c.b) < 2 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// bytes reads a u32-length-prefixed blob, rejecting lengths over max
// before looking at the data.
func (c *cursor) bytes(max int) []byte {
	l := int(c.u32())
	if c.err != nil {
		return nil
	}
	if l > max || l > len(c.b) {
		c.fail()
		return nil
	}
	v := c.b[:l]
	c.b = c.b[l:]
	return v
}

func (c *cursor) str(max int) string {
	l := int(c.u16())
	if c.err != nil {
		return ""
	}
	if l > max || l > len(c.b) {
		c.fail()
		return ""
	}
	v := string(c.b[:l])
	c.b = c.b[l:]
	return v
}

func (c *cursor) int32s(n int) []int32 {
	if c.err != nil || len(c.b) < 4*n {
		c.fail()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(c.b[4*i:]))
	}
	c.b = c.b[4*n:]
	return out
}

func (c *cursor) header() (string, map[string]string, error) {
	family := c.str(maxString)
	count := int(c.u16())
	if c.err == nil && count > maxMeta {
		return "", nil, fmt.Errorf("checkpoint: implausible meta count %d", count)
	}
	var meta map[string]string
	if c.err == nil && count > 0 {
		meta = make(map[string]string, count)
		for i := 0; i < count; i++ {
			k := c.str(maxString)
			meta[k] = c.str(maxString)
		}
	}
	return family, meta, c.err
}

func appendString(out []byte, s string) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendInt32s(out []byte, v []int32) []byte {
	for _, x := range v {
		out = binary.BigEndian.AppendUint32(out, uint32(x))
	}
	return out
}
