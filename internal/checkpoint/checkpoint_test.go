package checkpoint_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algebras"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gadgets"
	"repro/internal/gaorexford"
	"repro/internal/matrix"
	"repro/internal/pathalg"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden checkpoint files")

// Format compatibility is tested against committed golden files, one per
// carrier family: today's build must keep decoding yesterday's
// checkpoints byte-for-byte, and a freshly encoded snapshot of the same
// deterministic run must still produce exactly the golden bytes. The
// decode side rebuilds its algebra from scratch — for the interned
// families that means a fresh paths.Table, so a passing restore proves
// the interned-id remap, not just the byte plumbing.

// family packages one carrier: a builder (called separately for the
// encode and decode sides) and the deterministic instance parameters.
func goldenCase[R any](t *testing.T, name string, mk func() (core.Algebra[R], *matrix.Adjacency[R], wire.Codec[R])) {
	t.Helper()
	const T, at = 40, 20
	alg1, adj1, codec1 := mk()
	n := adj1.N
	s := schedule.Random(rand.New(rand.NewSource(11)), n, T, schedule.Options{MaxGap: 5, MaxStaleness: 4})
	eng1 := engine.New(alg1, adj1, engine.Config{})
	defer eng1.Close()
	full, snap := eng1.RunSnapshot(matrix.Identity(alg1, n), s, at, false)
	if snap == nil {
		t.Fatal("no snapshot captured")
	}
	data, err := checkpoint.Encode(codec1, &checkpoint.File[R]{
		Family: name,
		Meta:   map[string]string{"family": name, "horizon": fmt.Sprint(T)},
		Snap:   snap,
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	golden := filepath.Join("testdata", name+".ckpt")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("encoding of the deterministic %s snapshot no longer matches the golden file (%d vs %d bytes); if the format changed intentionally, bump checkpoint.Version and regenerate with -update",
			name, len(data), len(want))
	}

	// Decode the golden bytes against a freshly built instance and prove
	// the restored continuation matches the uninterrupted run. Comparison
	// goes through Format: interned ids legitimately differ across
	// tables, the materialised routes must not.
	family, meta, err := checkpoint.Header(want)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if family != name || meta["horizon"] != fmt.Sprint(T) {
		t.Fatalf("header round trip: got family %q meta %v", family, meta)
	}
	alg2, adj2, codec2 := mk()
	f, err := checkpoint.Decode(codec2, want, name)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	eng2 := engine.New(alg2, adj2, engine.Config{})
	defer eng2.Close()
	resumed, err := eng2.Restore(f.Snap, s)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	wantFinal, gotFinal := full.Final(), resumed.Final()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w, g := alg1.Format(wantFinal.Get(i, j)), alg2.Format(gotFinal.Get(i, j))
			if w != g {
				t.Fatalf("cell (%d,%d) after golden restore: got %s want %s", i, j, g, w)
			}
		}
	}
	fs, rs := full.Stats(), resumed.Stats()
	if fs.CellsComputed != rs.CellsComputed || fs.Steps != rs.Steps {
		t.Fatalf("stats after golden restore: got %+v want %+v", rs, fs)
	}
}

func TestGoldenCheckpoints(t *testing.T) {
	t.Run("natinf", func(t *testing.T) {
		goldenCase(t, "natinf", func() (core.Algebra[algebras.NatInf], *matrix.Adjacency[algebras.NatInf], wire.Codec[algebras.NatInf]) {
			alg := algebras.HopCount{Limit: 9}
			adj := matrix.NewAdjacency[algebras.NatInf](5)
			for i := 0; i < 5; i++ {
				j := (i + 1) % 5
				adj.SetEdge(i, j, alg.AddEdge(1))
				adj.SetEdge(j, i, alg.AddEdge(1))
			}
			return alg, adj, wire.NatInfCodec{}
		})
	})
	t.Run("lex", func(t *testing.T) {
		type P = algebras.Pair[algebras.NatInf, algebras.NatInf]
		goldenCase(t, "lex", func() (core.Algebra[P], *matrix.Adjacency[P], wire.Codec[P]) {
			wide := algebras.WidestPaths{}
			hops := algebras.HopCount{Limit: 9}
			lex := algebras.NewLex[algebras.NatInf, algebras.NatInf](wide, hops)
			adj := matrix.NewAdjacency[P](5)
			caps := []algebras.NatInf{3, 7, 2, 9, 5}
			for i := 0; i < 5; i++ {
				j := (i + 1) % 5
				e := lex.Edge(wide.CapEdge(caps[i]), hops.AddEdge(1))
				adj.SetEdge(i, j, e)
				adj.SetEdge(j, i, e)
			}
			return lex, adj, wire.PairCodec[algebras.NatInf, algebras.NatInf]{First: wire.NatInfCodec{}, Second: wire.NatInfCodec{}}
		})
	})
	t.Run("gaorexford", func(t *testing.T) {
		goldenCase(t, "gaorexford", func() (core.Algebra[gaorexford.Route], *matrix.Adjacency[gaorexford.Route], wire.Codec[gaorexford.Route]) {
			alg := gaorexford.Algebra{MaxHops: 12}
			adj := matrix.NewAdjacency[gaorexford.Route](5)
			for i := 0; i < 5; i++ {
				for j := 0; j < 5; j++ {
					if i == j {
						continue
					}
					switch {
					case i+1 == j || j+1 == i:
						adj.SetEdge(i, j, alg.Edge(gaorexford.PeerEdge))
					case i < j:
						adj.SetEdge(i, j, alg.Edge(gaorexford.CustomerEdge))
					default:
						adj.SetEdge(i, j, alg.Edge(gaorexford.ProviderEdge))
					}
				}
			}
			return alg, adj, wire.GaoRexfordCodec{}
		})
	})
	t.Run("policy-interned", func(t *testing.T) {
		goldenCase(t, "policy-interned", func() (core.Algebra[policy.IRoute], *matrix.Adjacency[policy.IRoute], wire.Codec[policy.IRoute]) {
			pol, err := policy.ParsePolicy("addc(2); if (comm(2) & !path(3)) { lp+=7 } else { prepend(1) }")
			if err != nil {
				t.Fatal(err)
			}
			alg := policy.NewInterned(nil)
			adj := matrix.NewAdjacency[policy.IRoute](6)
			for i := 0; i < 6; i++ {
				for _, d := range []int{1, 2} {
					j := (i + d) % 6
					adj.SetEdge(i, j, alg.Edge(i, j, pol))
					adj.SetEdge(j, i, alg.Edge(j, i, pol))
				}
			}
			return alg, adj, wire.InternedPolicyCodec{Alg: alg}
		})
	})
	t.Run("pv-interned", func(t *testing.T) {
		type RI = pathalg.IRoute[algebras.NatInf]
		goldenCase(t, "pv-interned", func() (core.Algebra[RI], *matrix.Adjacency[RI], wire.Codec[RI]) {
			base := algebras.HopCount{Limit: 9}
			in := pathalg.NewInterned[algebras.NatInf](base, nil)
			baseAdj := matrix.NewAdjacency[algebras.NatInf](5)
			for i := 0; i < 5; i++ {
				j := (i + 1) % 5
				baseAdj.SetEdge(i, j, base.AddEdge(1))
				baseAdj.SetEdge(j, i, base.AddEdge(1))
			}
			return in, pathalg.LiftAdjacencyInterned(in, baseAdj), wire.InternedPathCodec[algebras.NatInf]{Alg: in, Base: wire.NatInfCodec{}}
		})
	})
	t.Run("spp", func(t *testing.T) {
		goldenCase(t, "spp", func() (core.Algebra[gadgets.Route], *matrix.Adjacency[gadgets.Route], wire.Codec[gadgets.Route]) {
			spp := gadgets.Disagree().Clone()
			alg := gadgets.Algebra{S: spp}
			return alg, alg.Adjacency(), wire.SPPCodec{}
		})
	})
}

// TestCheckpointTamper flips and truncates bytes of a real checkpoint:
// every corruption must come back as a clean error — the checksum
// catches arbitrary flips, and even with a recomputed checksum the
// bounds-checked decoder must never panic or over-allocate.
func TestCheckpointTamper(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "natinf.ckpt"))
	if err != nil {
		t.Fatalf("golden file: %v (run with -update to regenerate)", err)
	}
	codec := wire.NatInfCodec{}

	for pos := 0; pos < len(data); pos += 7 {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x41
		if _, err := checkpoint.Decode(codec, bad, "natinf"); err == nil {
			t.Fatalf("decode accepted a checkpoint with byte %d flipped", pos)
		}
		if _, _, err := checkpoint.Header(bad); err == nil {
			t.Fatalf("header accepted a checkpoint with byte %d flipped", pos)
		}
	}
	for cut := 0; cut < len(data); cut += 13 {
		if _, err := checkpoint.Decode(codec, data[:cut], "natinf"); err == nil {
			t.Fatalf("decode accepted a checkpoint truncated to %d bytes", cut)
		}
	}

	// Adversarial form: flip a byte AND recompute the checksum, so the
	// corruption reaches the structural decoder. It may decode (many
	// flips are benign route-value changes) but must never panic; a
	// recover here would hide exactly the crash the decoder exists to
	// prevent.
	for pos := 6; pos < len(data)-4; pos++ {
		bad := append([]byte(nil), data[:len(data)-4]...)
		bad[pos] ^= 0xFF
		bad = binary.BigEndian.AppendUint32(bad, crc32.ChecksumIEEE(bad))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked with byte %d rewritten: %v", pos, r)
				}
			}()
			_, _ = checkpoint.Decode(codec, bad, "natinf")
			_, _, _ = checkpoint.Header(bad)
		}()
	}
}

// TestCheckpointWrongFamily pins the codec-mismatch guard.
func TestCheckpointWrongFamily(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "natinf.ckpt"))
	if err != nil {
		t.Skip("golden file missing")
	}
	if _, err := checkpoint.Decode(wire.NatInfCodec{}, data, "gaorexford"); err == nil {
		t.Fatal("decode handed natinf bytes to a decoder expecting gaorexford")
	}
}
