// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (the experiment IDs match DESIGN.md).
// Each benchmark regenerates the artefact end-to-end, so -bench times the
// cost of reproducing it; correctness is asserted inside every iteration.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/algebras"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/matrix"
	"repro/internal/pathalg"
	"repro/internal/topology"
	"repro/internal/ultrametric"
)

// BenchmarkTable1PropertyChecks regenerates the E1 property matrix.
func BenchmarkTable1PropertyChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expr.Table1(io.Discard)
		if len(res.Rows) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkTable2Algebras regenerates the E2 solved-algebra table.
func BenchmarkTable2Algebras(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expr.Table2(io.Discard)
		for _, row := range res.Rows {
			if !row.LawsOK {
				b.Fatal("law failure")
			}
		}
	}
}

// BenchmarkFigure1Pipeline executes the E3 implication chain.
func BenchmarkFigure1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.Figure1(io.Discard, 10).AllOK() {
			b.Fatal("pipeline broke")
		}
	}
}

// BenchmarkFigure2Ultrametrics regenerates the E4 distance chains.
func BenchmarkFigure2Ultrametrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.Figure2(io.Discard).OK {
			b.Fatal("chain malformed")
		}
	}
}

// BenchmarkDVConvergence runs the E5 distance-vector sweeps.
func BenchmarkDVConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.DistanceVector(io.Discard, 6).AllOK() {
			b.Fatal("E5 failed")
		}
	}
}

// BenchmarkPVConvergence runs the E6 path-vector sweeps.
func BenchmarkPVConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.PathVector(io.Discard, 5).AllOK() {
			b.Fatal("E6 failed")
		}
	}
}

// BenchmarkPolicyAlgebra runs the E7 safe-by-design fuzz.
func BenchmarkPolicyAlgebra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.SafeByDesign(io.Discard, 100, 3).OK() {
			b.Fatal("E7 failed")
		}
	}
}

// BenchmarkGadgets runs the E8 anomaly suite.
func BenchmarkGadgets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.Anomalies(io.Discard, 4).AllOK() {
			b.Fatal("E8 failed")
		}
	}
}

// BenchmarkGaoRexford runs the E9 embedding experiment.
func BenchmarkGaoRexford(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.GaoRexford(io.Discard, 4).OK() {
			b.Fatal("E9 failed")
		}
	}
}

// BenchmarkConvergenceRate runs the E10 rounds-vs-n sweep.
func BenchmarkConvergenceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := expr.ConvergenceRate(io.Discard, []int{4, 6, 8}, 4)
		if !res.DistributiveLinear || !res.IncreasingQuadratic {
			b.Fatal("E10 bound violated")
		}
	}
}

// e5Scenario builds the E5 production-scale instance shared by
// BenchmarkE5EngineConvergence and the CI allocation gate
// (TestE5EngineAllocGate): distance-vector absolute convergence at
// n = 512 over a fair pseudo-random schedule.
func e5Scenario() (algebras.HopCount, *matrix.Adjacency[algebras.NatInf], *matrix.State[algebras.NatInf], engine.Hashed) {
	const n = 512
	alg := algebras.HopCount{Limit: algebras.NatInf(2 * n)}
	g := topology.Ring(n)
	adj := topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1))
	for i := 0; i < n; i += 8 {
		if j := (i + n/2) % n; j != i {
			adj.SetEdge(i, j, alg.AddEdge(2))
			adj.SetEdge(j, i, alg.AddEdge(2))
		}
	}
	start := matrix.Identity[algebras.NatInf](alg, n)
	src := engine.Hashed{N: n, T: 10 * n, Seed: 5, MaxGap: 16, MaxStaleness: 8}
	return alg, adj, start, src
}

// BenchmarkE5EngineConvergence is the E5 scenario at production scale on
// the hot path: distance-vector absolute convergence at n = 512, run
// through the incremental δ engine over a fair pseudo-random schedule.
// The run must certify convergence (early termination) and land on a
// σ-stable state; cells/op exposes the change-driven engine's
// output-sensitive cost on the paper-artefact harness. Allocations
// amortise towards zero with b.N: the first run populates the engine's
// pooled scratch and subsequent runs reuse it.
func BenchmarkE5EngineConvergence(b *testing.B) {
	alg, adj, start, src := e5Scenario()
	eng := engine.New[algebras.NatInf](alg, adj, engine.Config{})
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		res := eng.Run(start, src)
		if _, ok := res.Converged(); !ok {
			b.Fatal("E5 engine run did not certify convergence")
		}
		if !matrix.IsStable[algebras.NatInf](alg, adj, res.Final()) {
			b.Fatal("E5 engine limit is not σ-stable")
		}
		cells += res.Stats().CellsComputed
	}
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}

// BenchmarkAsyncEngines runs the E12 three-substrate equivalence.
func BenchmarkAsyncEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.AsyncEquivalence(io.Discard, 4).OK() {
			b.Fatal("E12 failed")
		}
	}
}

// BenchmarkBisimulation runs the E13 hierarchical-path bisimulation.
func BenchmarkBisimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.Bisimulation(io.Discard, 8).OK() {
			b.Fatal("E13 failed")
		}
	}
}

// BenchmarkDynamicTopologies runs the E14 flap/partition/epoch suite.
func BenchmarkDynamicTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !expr.Dynamic(io.Discard, 10).OK() {
			b.Fatal("E14 failed")
		}
	}
}

// BenchmarkOrbitChains measures the E11 Lemma 2 chain construction on a
// larger network.
func BenchmarkOrbitChains(b *testing.B) {
	alg := algebras.HopCount{Limit: 15}
	g := topology.Ring(8)
	adj := topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1))
	m := ultrametric.NewDV[algebras.NatInf](alg, alg.Universe())
	start := matrix.NewState[algebras.NatInf](8, 5)
	for i := 0; i < 8; i++ {
		start.Set(i, i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain := ultrametric.OrbitDistances[algebras.NatInf](alg, adj, m, start, 200)
		if len(chain) == 0 || chain[len(chain)-1] != 0 {
			b.Fatal("chain did not terminate at 0")
		}
	}
}

// BenchmarkSigmaRound measures one synchronous round on a 32-node random
// graph — the inner loop every experiment leans on.
func BenchmarkSigmaRound(b *testing.B) {
	alg := algebras.ShortestPaths{}
	g := topology.Grid(8, 4)
	adj := topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1))
	x := matrix.Identity[algebras.NatInf](alg, g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = matrix.Sigma[algebras.NatInf](alg, adj, x)
	}
}

// BenchmarkPathVectorSigma measures one σ round with full path tracking.
func BenchmarkPathVectorSigma(b *testing.B) {
	base := algebras.ShortestPaths{}
	alg := pathalg.New[algebras.NatInf](base)
	g := topology.Ring(12)
	baseAdj := topology.BuildUniform[algebras.NatInf](g, base.AddEdge(1))
	adj := pathalg.LiftAdjacency(alg, baseAdj)
	type R = pathalg.Route[algebras.NatInf]
	x, _, _ := matrix.FixedPoint[R](alg, adj, matrix.Identity[R](alg, g.N), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := matrix.Sigma[R](alg, adj, x)
		if !y.Equal(alg, x) {
			b.Fatal("fixed point drifted")
		}
	}
}

// BenchmarkPathVectorSigmaInterned is BenchmarkPathVectorSigma over the
// hash-consed carrier: every Extend is a table probe, every Equal an id
// compare, so the round allocates nothing once the table is warm.
func BenchmarkPathVectorSigmaInterned(b *testing.B) {
	base := algebras.ShortestPaths{}
	alg := pathalg.NewInterned[algebras.NatInf](base, nil)
	g := topology.Ring(12)
	baseAdj := topology.BuildUniform[algebras.NatInf](g, base.AddEdge(1))
	adj := pathalg.LiftAdjacencyInterned(alg, baseAdj)
	type R = pathalg.IRoute[algebras.NatInf]
	x, _, _ := matrix.FixedPoint[R](alg, adj, matrix.Identity[R](alg, g.N), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := matrix.Sigma[R](alg, adj, x)
		if !y.Equal(alg, x) {
			b.Fatal("fixed point drifted")
		}
	}
}

// BenchmarkPVEngineConvergence is the path-vector convergence scenario on
// the δ engine at n = 64, A/B over the route representation: "reference"
// carries []Arc paths, "interned" carries PathIDs (with the engine's
// per-edge memo caches engaged). Same schedule, bit-equivalent limits;
// the delta is the hash-consing win on a path-aware algebra.
func BenchmarkPVEngineConvergence(b *testing.B) {
	const n = 64
	base := algebras.ShortestPaths{}
	g := topology.Ring(n)
	baseAdj := topology.BuildUniform[algebras.NatInf](g, base.AddEdge(1))
	for i := 0; i < n; i += 8 {
		if j := (i + n/2) % n; j != i {
			baseAdj.SetEdge(i, j, base.AddEdge(2))
			baseAdj.SetEdge(j, i, base.AddEdge(2))
		}
	}
	src := engine.Hashed{N: n, T: 10 * n, Seed: 5, MaxGap: 16, MaxStaleness: 8}

	b.Run("reference", func(b *testing.B) {
		alg := pathalg.New[algebras.NatInf](base)
		adj := pathalg.LiftAdjacency(alg, baseAdj)
		type R = pathalg.Route[algebras.NatInf]
		start := matrix.Identity[R](alg, n)
		eng := engine.New[R](alg, adj, engine.Config{})
		defer eng.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := eng.Run(start, src).Converged(); !ok {
				b.Fatal("reference run did not certify convergence")
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		alg := pathalg.NewInterned[algebras.NatInf](base, nil)
		adj := pathalg.LiftAdjacencyInterned(alg, baseAdj)
		type R = pathalg.IRoute[algebras.NatInf]
		start := matrix.Identity[R](alg, n)
		eng := engine.New[R](alg, adj, engine.Config{})
		defer eng.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := eng.Run(start, src).Converged(); !ok {
				b.Fatal("interned run did not certify convergence")
			}
		}
	})
}
