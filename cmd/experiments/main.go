// Command experiments regenerates every table and figure of the paper
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// outcomes).
//
// Usage:
//
//	experiments [-trials N] [all|table1|table2|fig1|fig2|dv|pv|policy|anomalies|gr|rate|async|bisim|dynamic|faults]...
package main

import (
	"flag"
	"fmt"
	"os"
)

import "repro/internal/expr"

func main() {
	trials := flag.Int("trials", 20, "trials per randomized sweep")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	ok := true
	runOne := func(name string) {
		w := os.Stdout
		switch name {
		case "table1":
			expr.Table1(w)
		case "table2":
			res := expr.Table2(w)
			for _, r := range res.Rows {
				ok = ok && r.LawsOK
			}
		case "fig1":
			ok = expr.Figure1(w, *trials).AllOK() && ok
		case "fig2":
			ok = expr.Figure2(w).OK && ok
		case "dv":
			ok = expr.DistanceVector(w, *trials).AllOK() && ok
		case "pv":
			ok = expr.PathVector(w, *trials).AllOK() && ok
		case "policy":
			ok = expr.SafeByDesign(w, 20*(*trials), *trials/2+1).OK() && ok
		case "anomalies":
			ok = expr.Anomalies(w, *trials/2+4).AllOK() && ok
		case "gr":
			ok = expr.GaoRexford(w, *trials).OK() && ok
		case "rate":
			res := expr.ConvergenceRate(w, []int{4, 6, 8, 10}, *trials)
			ok = res.DistributiveLinear && res.IncreasingQuadratic && ok
		case "async":
			ok = expr.AsyncEquivalence(w, *trials).OK() && ok
		case "bisim":
			ok = expr.Bisimulation(w, *trials).OK() && ok
		case "dynamic":
			ok = expr.Dynamic(w, *trials).OK() && ok
		case "faults":
			ok = expr.FaultSensitivity(w, *trials).AllConverged() && ok
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	for _, name := range args {
		if name == "all" {
			for _, n := range []string{"table1", "table2", "fig1", "fig2", "dv", "pv", "policy", "anomalies", "gr", "rate", "async", "bisim", "dynamic", "faults"} {
				runOne(n)
			}
			continue
		}
		runOne(name)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "\nSOME EXPERIMENTS DEVIATED FROM THE PAPER'S PREDICTIONS")
		os.Exit(1)
	}
	fmt.Println("\nall experiments matched the paper's predictions")
}
