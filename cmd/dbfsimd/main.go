// Command dbfsimd is the multi-tenant simulation service daemon: it
// accepts scenario runs over the wire protocol, schedules them across
// tenants with weighted fairness and checkpoint preemption, sheds
// overload with retriable typed errors, and drains gracefully on
// SIGTERM — checkpointing every in-flight run to the spool directory so
// a restarted daemon resumes them bit-identically.
//
// Usage:
//
//	dbfsimd -addr 127.0.0.1:7117 -spool /var/spool/dbfsimd \
//	        -workers 4 -quantum 64 -max-inflight 4
//
// Submit runs with `dbfsim -server 127.0.0.1:7117 -scenario f.scenario`
// or drive sustained load with the loadgen command.
//
// With -admin set, a second loopback HTTP listener serves the
// observability surface: GET /metrics (Prometheus text), /healthz
// (drain-aware), /runs (JSON table with per-run span logs) and the
// net/http/pprof profiler endpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7117", "listen address (host:port, :0 picks a free port)")
		workers  = flag.Int("workers", 2, "concurrent run-advancing workers")
		quantum  = flag.Int("quantum", 64, "engine steps per preemption quantum")
		spool    = flag.String("spool", "", "spool directory for drain/resume (empty disables graceful drain)")
		inflight = flag.Int("max-inflight", 4, "per-tenant cap on admitted unfinished runs")
		scenCap  = flag.Int("max-scenario-bytes", 4000, "per-tenant cap on submitted scenario size")
		tenants  = flag.Int("max-tenants", 64, "cap on distinct tenants")
		retry    = flag.Duration("retry-after", 200*time.Millisecond, "backoff hint attached to shed load")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before giving up")
		stall    = flag.Duration("stall", 0, "fault injection: sleep this long after every quantum (holds runs mid-flight for kill/restart drills)")
		quiet    = flag.Bool("quiet", false, "suppress per-event logging")
		admin    = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /runs and pprof (empty disables)")
	)
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	s, err := server.New(server.Config{
		Addr: *addr, Workers: *workers, Quantum: *quantum,
		SpoolDir: *spool,
		DefaultQuota: server.Quota{
			MaxInFlight: *inflight, MaxScenarioBytes: *scenCap,
		},
		MaxTenants: *tenants,
		RetryAfter: *retry,
		Stall:      *stall,
		Logf:       logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbfsimd: %v\n", err)
		return 1
	}
	// The bound address goes to stdout so scripts (and the CI smoke job)
	// can scrape it even with :0.
	fmt.Printf("dbfsimd: listening on %s\n", s.Addr())

	if *admin != "" {
		// Engine-level counters ride the same registry the admin page
		// exposes; the observer is one atomic load per completed run.
		server.ObserveEngineRuns(metrics.Default)
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbfsimd: admin listen: %v\n", err)
			return 1
		}
		asrv := &http.Server{Handler: s.AdminHandler()}
		go asrv.Serve(aln)
		defer asrv.Close()
		fmt.Printf("dbfsimd: admin on %s\n", aln.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	logf("dbfsimd: %v: draining", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if *spool == "" {
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dbfsimd: close: %v\n", err)
			return 1
		}
		return 0
	}
	spooled, err := s.Drain(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbfsimd: drain: %v\n", err)
		return 1
	}
	fmt.Printf("dbfsimd: drained, %d runs spooled to %s\n", spooled, *spool)
	return 0
}
