package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// runRemote is the -server client mode: it submits a scenario file to a
// running dbfsimd daemon, rides out overload shedding with the daemon's
// retry-after hints, survives a daemon drain/restart mid-wait, and
// prints the run's result — which the drain/resume contract guarantees
// is bit-identical to an uninterrupted run.
func runRemote(addr, scenFile, tenant, runID string, deadline time.Duration) int {
	if scenFile == "" {
		fmt.Fprintln(os.Stderr, "dbfsim: -server needs a -scenario file to submit")
		return 2
	}
	text, err := os.ReadFile(scenFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbfsim: %v\n", err)
		return 2
	}
	if runID == "" {
		base := scenFile
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.IndexByte(base, '.'); i >= 0 {
			base = base[:i]
		}
		runID = fmt.Sprintf("%s-%d", sanitizeID(base), time.Now().UnixNano()%1_000_000_000)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	c, err := server.DialClient(ctx, addr, tenant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbfsim: dialling %s: %v\n", addr, err)
		return 1
	}
	defer c.Close()

	start := time.Now()
	res, sheds, err := c.RunRetry(ctx, runID, text, deadline)
	if err != nil {
		var ef *wire.ErrorFrame
		if errors.As(err, &ef) {
			fmt.Fprintf(os.Stderr, "dbfsim: run %s/%s: %v\n", tenant, runID, ef)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dbfsim: %v\n", err)
		return 1
	}
	fmt.Printf("run %s/%s completed in %v (shed %d times before admission)\n",
		tenant, runID, time.Since(start).Round(time.Millisecond), sheds)
	fmt.Printf("steps=%d convergedAt=%d cells=%d hash=%016x\n",
		res.Steps, res.ConvergedAt, res.CellsComputed, res.Hash)
	if res.Table != "" {
		fmt.Println(res.Table)
	}
	return 0
}

// sanitizeID maps an arbitrary basename into the daemon's id charset.
func sanitizeID(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	if out == "" {
		out = "run"
	}
	if len(out) > 40 {
		out = out[:40]
	}
	return out
}
