package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/scenario"
)

// -stats-json: machine-readable output. One JSON object on stdout per
// invocation, nothing else — the human-readable report moves aside so a
// pipeline can `dbfsim ... -stats-json | jq .cells_computed` without
// scraping prose.

// statsJSON mirrors the -stats-json flag for the run paths.
var statsJSON bool

// deltaStatsJSON is the -mode delta (and resumed-run) output shape.
type deltaStatsJSON struct {
	Mode          string `json:"mode"`
	Steps         int    `json:"steps"`
	Horizon       int    `json:"horizon"`
	RowsComputed  int    `json:"rows_computed"`
	RowsSkipped   int    `json:"rows_skipped"`
	CellsComputed int    `json:"cells_computed"`
	RowsRecycled  int    `json:"rows_recycled"`
	Retained      int    `json:"retained"`
	Converged     bool   `json:"converged"`
	ConvergedAt   int    `json:"converged_at"` // -1 when not certified
	Stable        bool   `json:"stable"`
}

// simStatsJSON is the -mode sim output shape.
type simStatsJSON struct {
	Mode        string `json:"mode"`
	EndTime     int64  `json:"end_time"`
	Sent        int    `json:"sent"`
	Delivered   int    `json:"delivered"`
	Dropped     int    `json:"dropped"`
	Duplicated  int    `json:"duplicated"`
	Activations int    `json:"activations"`
	Converged   bool   `json:"converged"`
	ConvergedAt int64  `json:"converged_at"` // -1 when not converged
	Stable      bool   `json:"stable"`
}

// scenarioStatsJSON is the -scenario output shape: the watchdog verdict
// of every substrate played.
type scenarioStatsJSON struct {
	Mode       string                 `json:"mode"`
	Scenario   string                 `json:"scenario"`
	Events     int                    `json:"events"`
	Horizon    int                    `json:"horizon"`
	Substrates []substrateVerdictJSON `json:"substrates"`
}

type substrateVerdictJSON struct {
	Substrate   string `json:"substrate"`
	Verdict     string `json:"verdict"`
	Converged   bool   `json:"converged"`
	Stable      bool   `json:"stable"`
	ReferenceOK *bool  `json:"reference_ok,omitempty"` // engine only
	Period      int    `json:"period,omitempty"`       // oscillating only
	Rounds      int    `json:"rounds"`
	Detail      string `json:"detail"`
}

// infof prints an informational progress line — to stdout normally, to
// stderr under -stats-json so stdout stays exactly one JSON object.
func infof(format string, args ...any) {
	w := os.Stdout
	if statsJSON {
		w = os.Stderr
	}
	fmt.Fprintf(w, format, args...)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitCode = 2
	}
}

func deltaJSON(st engine.Stats, horizon int, convergedAt int, converged, stable bool) deltaStatsJSON {
	if !converged {
		convergedAt = -1
	}
	return deltaStatsJSON{
		Mode: "delta", Steps: st.Steps, Horizon: horizon,
		RowsComputed: st.RowsComputed, RowsSkipped: st.RowsSkipped,
		CellsComputed: st.CellsComputed, RowsRecycled: st.RowsRecycled,
		Retained:  st.Retained,
		Converged: converged, ConvergedAt: convergedAt, Stable: stable,
	}
}

func scenarioJSON(rep *scenario.Report) scenarioStatsJSON {
	out := scenarioStatsJSON{
		Mode: "scenario", Scenario: rep.Scenario.Name,
		Events: len(rep.Scenario.Events), Horizon: rep.Scenario.Horizon,
	}
	for _, sr := range rep.Substrates {
		v := substrateVerdictJSON{
			Substrate: sr.Substrate, Verdict: sr.Class.Verdict.String(),
			Converged: sr.Converged, Stable: sr.Stable,
			Period: sr.Class.Period, Rounds: sr.Class.Rounds, Detail: sr.Class.Detail,
		}
		if sr.Substrate == scenario.SubEngine {
			ok := sr.ReferenceOK
			v.ReferenceOK = &ok
		}
		out.Substrates = append(out.Substrates, v)
	}
	return out
}
