// Command dbfsim runs one asynchronous Distributed Bellman-Ford
// simulation and prints the routing tables and convergence statistics.
//
// Usage:
//
//	dbfsim -algebra rip -topo ring -n 6 -seed 1 -loss 0.2 -dup 0.1
//	dbfsim -algebra policy -policy 'addc(3); if (comm(3)) { lp+=2 }'
//	dbfsim -algebra gr -topo fattree -n 4 -mode delta -steps 2000
//	dbfsim -scenario examples/scenarios/wedgie-flap.scenario -substrate all
//	dbfsim -mode delta -checkpoint run.ckpt -checkpoint-at 150
//	dbfsim -resume run.ckpt
//
// Algebras: shortest, rip, widest, pv (path-tracked shortest), gr
// (Gao–Rexford tiers), policy (the Section 7 language; see -policy).
// Topologies: line, ring, grid, clique, star, random, fattree.
// Modes: sim (the event-driven message-passing simulator) and delta (the
// sharded, memory-bounded δ engine over a random (α, β) schedule).
// With -scenario, dbfsim instead plays a dynamic-event timeline (link
// failures, restarts, node crashes, live policy edits) from a scenario
// file on the substrates named by -substrate (engine, sim, dist, or all)
// and prints each substrate's watchdog verdict; the exit code is 0 only
// when every substrate converged.
// With -checkpoint (delta mode), the run halts right after step
// -checkpoint-at (default T/2) and writes a CRC-checksummed resumable
// checkpoint; -resume continues such a run to its horizon, rebuilding
// the instance from the checkpoint's own metadata — no other flags
// needed — and the continuation is bit-identical to the run that was
// never interrupted.
// The path-aware algebras (pv, policy) run over hash-consed interned
// paths by default; -intern=false selects the reference []Arc carrier
// and disables the engine's pooled-scratch/memo fast paths, for A/B
// comparison (mirroring -incremental). Algebras that pack canonically
// (shortest, rip, interned pv/gr/policy) additionally evaluate through
// the columnar struct-of-arrays kernels by default; -columnar=false
// keeps the generic interface path, completing the A/B triple.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"

	"repro/internal/algebras"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gaorexford"
	"repro/internal/matrix"
	"repro/internal/pathalg"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/simulate"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() { os.Exit(realMain()) }

// realMain carries the program body so deferred profile writers run
// before the exit code is surfaced (os.Exit would skip them).
func realMain() int {
	var (
		algebra = flag.String("algebra", "rip", "routing algebra: shortest|rip|widest|pv|gr|policy")
		topo    = flag.String("topo", "ring", "topology: line|ring|grid|clique|star|random|fattree")
		n       = flag.Int("n", 6, "number of nodes (fattree: k, nodes = 5k²/4)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		loss    = flag.Float64("loss", 0.1, "message loss probability")
		dup     = flag.Float64("dup", 0.05, "message duplication probability")
		delay   = flag.Int64("delay", 10, "max message delay (virtual ticks)")
		garbage = flag.Bool("garbage", false, "start from a random state instead of the clean state")
		polSrc  = flag.String("policy", "lp+=1",
			"policy program applied on every edge when -algebra policy (Section 7 syntax)")
		showTrace = flag.Bool("trace", false, "print the route-change timeline after the run")
		modeFlag  = flag.String("mode", "sim", "evaluation substrate: sim (event simulator) | delta (schedule-driven engine)")
		stepsFlag = flag.Int("steps", 0, "delta mode: schedule horizon T (default 50·n)")
		incFlag   = flag.Bool("incremental", true,
			"delta mode: change-driven evaluation (skip unchanged rows, recompute only affected cells, stop at the certified fixed point); false = full recomputation, for A/B comparison")
		internFlag = flag.Bool("intern", true,
			"hash-consed route interning: path-aware algebras (pv, policy) carry PathIDs backed by a shared table, and the delta engine reuses pooled scratch and per-edge memo caches; false = reference []Arc paths and allocation-per-run evaluation, for A/B comparison")
		colFlag = flag.Bool("columnar", true,
			"delta mode: evaluate packable algebras through the columnar struct-of-arrays kernels (packed cell lanes, batched per-edge policy application, word-compare change detection); false = generic interface evaluation, for A/B comparison")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		scenFile = flag.String("scenario", "",
			"play a dynamic-event scenario file instead of a static run (see internal/scenario)")
		substrate = flag.String("substrate", "engine",
			"scenario mode: substrate(s) to play the timeline on: engine|sim|dist|all")
		ckptFile = flag.String("checkpoint", "",
			"delta mode: halt right after step -checkpoint-at and write a resumable checkpoint to this file")
		ckptAt = flag.Int("checkpoint-at", 0,
			"delta mode: step to checkpoint at (default T/2)")
		serverAddr = flag.String("server", "",
			"submit -scenario to a running dbfsimd daemon at this address instead of running locally")
		tenantFlag = flag.String("tenant", "cli",
			"tenant name for -server submissions")
		runIDFlag = flag.String("run-id", "",
			"run id for -server submissions (default: derived from the scenario name and time)")
		deadlineFlag = flag.Duration("deadline", 0,
			"optional completion deadline for -server submissions (0 = none)")
		resumeFile = flag.String("resume", "",
			"resume a checkpointed delta run to its horizon; the instance is rebuilt from the checkpoint's metadata and all other instance flags are ignored")
		jsonFlag = flag.Bool("stats-json", false,
			"emit the final run statistics (or scenario watchdog verdicts) as a single JSON object on stdout, suppressing the human-readable report")
	)
	flag.Parse()
	statsJSON = *jsonFlag

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *serverAddr != "" {
		return runRemote(*serverAddr, *scenFile, *tenantFlag, *runIDFlag, *deadlineFlag)
	}
	if *scenFile != "" {
		return runScenario(*scenFile, *substrate)
	}

	if *resumeFile != "" {
		if *ckptFile != "" {
			fmt.Fprintln(os.Stderr, "-checkpoint and -resume cannot be combined")
			return 2
		}
		data, err := os.ReadFile(*resumeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		family, meta, err := checkpoint.Header(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Rebuild the instance exactly as the checkpointing run shaped it:
		// every knob that affects the algebra, topology or schedule comes
		// from the checkpoint's own metadata, not this invocation's flags.
		for key, dst := range map[string]*string{"algebra": algebra, "topo": topo, "policy": polSrc} {
			if v, ok := meta[key]; ok {
				*dst = v
			}
		}
		for key, dst := range map[string]*int{"n": n, "horizon": stepsFlag} {
			if v, err := strconv.Atoi(meta[key]); err == nil {
				*dst = v
			}
		}
		if v, err := strconv.ParseInt(meta["seed"], 10, 64); err == nil {
			*seed = v
		}
		*modeFlag = "delta"
		*incFlag = meta["incremental"] != "false"
		*internFlag = meta["intern"] != "false"
		*colFlag = meta["columnar"] != "false"
		resumeData = data
		infof("resuming %s checkpoint %s (algebra %s, topo %s, n %d, seed %d)\n",
			family, *resumeFile, *algebra, *topo, *n, *seed)
	}

	mode = *modeFlag
	deltaSteps = *stepsFlag
	incremental = *incFlag
	interning = *internFlag
	columnar = *colFlag
	if mode != "sim" && mode != "delta" {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", mode)
		return 2
	}
	if *ckptFile != "" {
		if mode != "delta" {
			fmt.Fprintln(os.Stderr, "-checkpoint applies to -mode delta only")
			return 2
		}
		ckptPath, ckptAtStep = *ckptFile, *ckptAt
		ckptMeta = map[string]string{
			"algebra":     *algebra,
			"topo":        *topo,
			"n":           strconv.Itoa(*n),
			"seed":        strconv.FormatInt(*seed, 10),
			"incremental": strconv.FormatBool(incremental),
			"intern":      strconv.FormatBool(interning),
			"columnar":    strconv.FormatBool(columnar),
		}
		if *algebra == "policy" {
			ckptMeta["policy"] = *polSrc
		}
	}
	if mode == "delta" {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "loss", "dup", "delay":
				fmt.Fprintf(os.Stderr, "(-%s models message faults and applies to -mode sim only; ignoring)\n", f.Name)
			}
		})
	}

	g := buildGraph(*topo, *n, *seed)
	cfg := simulate.Config{Seed: *seed, LossProb: *loss, DupProb: *dup, MaxDelay: *delay}
	if *showTrace {
		recorder = &trace.Recorder{}
	}

	switch *algebra {
	case "shortest":
		alg := algebras.ShortestPaths{}
		runNat[algebras.ShortestPaths](alg, topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1)), cfg, *garbage, *seed,
			[]algebras.NatInf{0, 1, 2, algebras.Inf})
	case "rip":
		alg := algebras.RIP()
		runNat[algebras.HopCount](alg, topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1)), cfg, *garbage, *seed, alg.Universe())
	case "widest":
		alg := algebras.WidestPaths{}
		rng := rand.New(rand.NewSource(*seed))
		adj := topology.Build[algebras.NatInf](g, func(i, j int) core.Edge[algebras.NatInf] {
			return alg.CapEdge(algebras.NatInf(1 + rng.Intn(9)))
		})
		runNat[algebras.WidestPaths](alg, adj, cfg, *garbage, *seed, []algebras.NatInf{0, 1, 5, algebras.Inf})
	case "pv":
		base := algebras.ShortestPaths{}
		baseAdj := topology.BuildUniform[algebras.NatInf](g, base.AddEdge(1))
		if interning {
			alg := pathalg.NewInterned[algebras.NatInf](base, nil)
			adj := pathalg.LiftAdjacencyInterned(alg, baseAdj)
			type R = pathalg.IRoute[algebras.NatInf]
			start := matrix.Identity[R](alg, g.N)
			run[R](alg, adj, start, cfg, *seed, "pv-interned",
				wire.InternedPathCodec[algebras.NatInf]{Alg: alg, Base: wire.NatInfCodec{}})
		} else {
			alg := pathalg.New[algebras.NatInf](base)
			adj := pathalg.LiftAdjacency(alg, baseAdj)
			type R = pathalg.Route[algebras.NatInf]
			start := matrix.Identity[R](alg, g.N)
			run[R](alg, adj, start, cfg, *seed, "pv",
				wire.TrackedCodec[algebras.NatInf]{Base: wire.NatInfCodec{}})
		}
	case "gr":
		alg := gaorexford.Algebra{MaxHops: 16}
		rng := rand.New(rand.NewSource(*seed))
		adj := topology.Build[gaorexford.Route](g, func(i, j int) core.Edge[gaorexford.Route] {
			// Orient relationships by node id: lower id = provider;
			// equal-tier links (adjacent ids) peer. This is arbitrary but
			// produces a valid GR instance on any graph.
			switch {
			case i == j-1 || j == i-1:
				return alg.Edge(gaorexford.PeerEdge)
			case i < j:
				return alg.Edge(gaorexford.CustomerEdge)
			default:
				return alg.Edge(gaorexford.ProviderEdge)
			}
		})
		_ = rng
		start := matrix.Identity[gaorexford.Route](alg, g.N)
		run[gaorexford.Route](alg, adj, start, cfg, *seed, "gaorexford", wire.GaoRexfordCodec{})
	case "policy":
		pol, err := policy.ParsePolicy(*polSrc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		infof("policy on every edge: %s\n", pol)
		if interning {
			alg := policy.NewInterned(nil)
			adj := topology.Build[policy.IRoute](g, func(i, j int) core.Edge[policy.IRoute] {
				return alg.Edge(i, j, pol)
			})
			start := matrix.Identity[policy.IRoute](alg, g.N)
			if *garbage {
				rng := rand.New(rand.NewSource(*seed))
				start = matrix.RandomState(rng, g.N, func(rng *rand.Rand, _, _ int) policy.IRoute {
					return alg.FromRoute(policy.RandomRoute(rng, g.N))
				})
			}
			run[policy.IRoute](alg, adj, start, cfg, *seed, "policy-interned", wire.InternedPolicyCodec{Alg: alg})
		} else {
			alg := policy.Algebra{}
			adj := topology.Build[policy.Route](g, func(i, j int) core.Edge[policy.Route] {
				return alg.Edge(i, j, pol)
			})
			start := matrix.Identity[policy.Route](alg, g.N)
			if *garbage {
				rng := rand.New(rand.NewSource(*seed))
				start = matrix.RandomState(rng, g.N, func(rng *rand.Rand, _, _ int) policy.Route {
					return policy.RandomRoute(rng, g.N)
				})
			}
			run[policy.Route](alg, adj, start, cfg, *seed, "policy", wire.PolicyCodec{})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algebra %q\n", *algebra)
		return 2
	}
	return exitCode
}

// runScenario plays a dynamic-event timeline from a scenario file on the
// named substrates and prints the per-substrate watchdog verdicts. Exit
// status: 0 when every substrate's verdict is Converged, 1 when any run
// wedged, oscillated, diverged, stayed undecided, or — engine only —
// disagreed with the segment-wise reference evaluation; 2 on bad input.
func runScenario(path, substrate string) int {
	sc, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var subs []string
	switch substrate {
	case "all":
		subs = []string{scenario.SubEngine, scenario.SubSim, scenario.SubDist}
	case scenario.SubEngine, scenario.SubSim, scenario.SubDist:
		subs = []string{substrate}
	default:
		fmt.Fprintf(os.Stderr, "unknown substrate %q (want engine|sim|dist|all)\n", substrate)
		return 2
	}
	rep, err := scenario.Run(sc, subs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if statsJSON {
		emitJSON(scenarioJSON(rep))
	} else {
		fmt.Print(rep)
	}
	code := 0
	for _, sr := range rep.Substrates {
		if sr.Class.Verdict != scenario.VerdictConverged {
			code = 1
		}
		if sr.Substrate == scenario.SubEngine && !sr.ReferenceOK {
			fmt.Fprintln(os.Stderr, "engine run disagreed with the segment-wise reference evaluation")
			code = 1
		}
		if !statsJSON && len(rep.Substrates) <= 2 && sr.FinalTable != "" {
			fmt.Printf("%s final tables:\n%s", sr.Substrate, sr.FinalTable)
		}
	}
	return code
}

// recorder, when non-nil, captures the run's event timeline for -trace.
var recorder *trace.Recorder

// mode selects the evaluation substrate; deltaSteps is -steps;
// incremental is -incremental; interning is -intern; columnar is
// -columnar; exitCode is the eventual process status (set instead of
// os.Exit so deferred profile writers run).
var (
	mode        string
	deltaSteps  int
	incremental bool
	interning   bool
	columnar    bool
	exitCode    int
)

// ckptPath/ckptAtStep/ckptMeta configure a checkpoint-and-halt delta
// run; resumeData, when non-nil, holds the checkpoint bytes a delta run
// restores from instead of starting fresh.
var (
	ckptPath   string
	ckptAtStep int
	ckptMeta   map[string]string
	resumeData []byte
)

func buildGraph(topo string, n int, seed int64) topology.Graph {
	switch topo {
	case "line":
		return topology.Line(n)
	case "ring":
		return topology.Ring(n)
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		return topology.Grid(side, side)
	case "clique":
		return topology.Complete(n)
	case "star":
		return topology.Star(n)
	case "random":
		return topology.ErdosRenyi(rand.New(rand.NewSource(seed)), n, 0.3)
	case "fattree":
		g, _ := topology.FatTree(n)
		return g
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", topo)
		os.Exit(2)
		return topology.Graph{}
	}
}

func runNat[A core.Algebra[algebras.NatInf]](alg A, adj *matrix.Adjacency[algebras.NatInf],
	cfg simulate.Config, garbage bool, seed int64, universe []algebras.NatInf) {
	start := matrix.Identity[algebras.NatInf](alg, adj.N)
	if garbage {
		start = matrix.RandomStateFrom(rand.New(rand.NewSource(seed)), adj.N, universe)
	}
	run[algebras.NatInf](alg, adj, start, cfg, seed, "natinf", wire.NatInfCodec{})
}

// run dispatches one configured instance to the selected substrate.
// family and codec name the carrier's checkpoint representation; the
// simulator path never serialises and ignores them.
func run[R any](alg core.Algebra[R], adj *matrix.Adjacency[R], start *matrix.State[R],
	cfg simulate.Config, seed int64, family string, codec wire.Codec[R]) {
	switch mode {
	case "delta":
		runDelta[R](alg, adj, start, seed, family, codec)
	default:
		out := simulate.RunTraced[R](alg, adj, start, cfg, nil, nil, recorder)
		if statsJSON {
			convAt := out.ConvergedAt
			if !out.Converged {
				convAt = -1
			}
			emitJSON(simStatsJSON{
				Mode: "sim", EndTime: out.EndTime,
				Sent: out.Stats.Sent, Delivered: out.Stats.Delivered,
				Dropped: out.Stats.Dropped, Duplicated: out.Stats.Duplicated,
				Activations: out.Stats.Activations,
				Converged:   out.Converged, ConvergedAt: convAt,
				Stable: matrix.IsStable[R](alg, adj, out.Final),
			})
		} else {
			fmt.Println(out.Describe())
			report[R](alg, adj, out.Final)
		}
		if !out.Converged {
			exitCode = 1
		}
	}
}

// runDelta evaluates δ over a lazy pseudo-random bounded-staleness
// schedule (O(1) schedule memory at any n and T) with the sharded engine
// and reports whether the horizon reached the σ fixed point. The lazy
// schedule is a pure function of (seed, t, i, k), which is what lets a
// resumed run re-derive the exact activation sequence from the metadata
// alone — the checkpoint carries no schedule state beyond the step index.
func runDelta[R any](alg core.Algebra[R], adj *matrix.Adjacency[R], start *matrix.State[R],
	seed int64, family string, codec wire.Codec[R]) {
	if recorder != nil {
		fmt.Fprintln(os.Stderr, "(-trace records message events and applies to -mode sim only; ignoring)")
		recorder = nil
	}
	n := adj.N
	T := deltaSteps
	if T <= 0 {
		T = 50 * n
	}
	src := engine.Hashed{N: n, T: T, Seed: uint64(seed), MaxStaleness: 8}
	cfg := engine.Config{}
	if !incremental {
		cfg.Incremental = engine.IncOff
	}
	if !interning {
		cfg.Interning = engine.InternOff
	}
	if !columnar {
		cfg.Columnar = engine.ColOff
	}
	eng := engine.New[R](alg, adj, cfg)
	defer eng.Close()
	var res *engine.Result[R]
	switch {
	case resumeData != nil:
		f, err := checkpoint.Decode(codec, resumeData, family)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 2
			return
		}
		r, err := eng.Restore(f.Snap, src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 2
			return
		}
		infof("restored at step %d, continuing to T=%d\n", f.Snap.Step, T)
		res = r
	case ckptPath != "":
		at := ckptAtStep
		if at <= 0 {
			at = T / 2
		}
		if at < 1 {
			at = 1
		}
		if at > T {
			fmt.Fprintf(os.Stderr, "checkpoint step %d beyond horizon %d\n", at, T)
			exitCode = 2
			return
		}
		r, snap := eng.RunSnapshot(start, src, at, true)
		if snap == nil {
			infof("run certified convergence at t=%d, before checkpoint step %d; nothing to resume, no checkpoint written\n",
				mustConvergedAt(r), at)
			res = r
			break
		}
		ckptMeta["horizon"] = strconv.Itoa(T)
		data, err := checkpoint.Encode(codec, &checkpoint.File[R]{Family: family, Meta: ckptMeta, Snap: snap})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 2
			return
		}
		if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 2
			return
		}
		infof("checkpoint written to %s at step %d of %d (%d bytes); resume with -resume %s\n",
			ckptPath, at, T, len(data), ckptPath)
		// The halted prefix is not a finished run: skip the stability
		// report (and its exit-code gate) — the resuming process owns it.
		return
	default:
		res = eng.Run(start, src)
	}
	st := res.Stats()
	if statsJSON {
		convAt, conv := res.Converged()
		stable := matrix.IsStable[R](alg, adj, res.Final())
		emitJSON(deltaJSON(st, T, convAt, conv, stable))
		if !stable {
			exitCode = 1
		}
		return
	}
	fmt.Printf("δ engine: T=%d of %d, rows computed=%d, rows skipped=%d, cells computed=%d\n",
		st.Steps, T, st.RowsComputed, st.RowsSkipped, st.CellsComputed)
	fmt.Printf("          row buffers recycled=%d, states retained=%d\n", st.RowsRecycled, st.Retained)
	if at, ok := res.Converged(); ok {
		fmt.Printf("          converged at t=%d (certified; run stopped %d steps early)\n", at, T-st.Steps)
	} else if incremental {
		fmt.Println("          convergence not certified within the horizon")
	}
	if stable := report[R](alg, adj, res.Final()); !stable {
		exitCode = 1
	}
}

// mustConvergedAt reports where a run certified convergence; it is only
// called on runs RunSnapshot ended early, which implies certification.
func mustConvergedAt[R any](r *engine.Result[R]) int {
	at, _ := r.Converged()
	return at
}

// report prints the outcome and returns whether the final state is a
// fixed point of σ.
func report[R any](alg core.Algebra[R], adj *matrix.Adjacency[R], final *matrix.State[R]) bool {
	stable := matrix.IsStable[R](alg, adj, final)
	fmt.Printf("final state σ-stable: %v\n", stable)
	if adj.N <= 12 {
		fmt.Println("routing tables (row i = node i's best route to each destination):")
		fmt.Print(final.Format(alg))
	} else {
		fmt.Printf("(%d nodes; tables suppressed, rerun with -n ≤ 12 to print them)\n", adj.N)
	}
	if recorder != nil {
		fmt.Println("\nroute-change timeline:")
		recorder.Timeline(os.Stdout, 40)
		recorder.Summary(os.Stdout)
	}
	return stable
}
