// Command dbfsim runs one asynchronous Distributed Bellman-Ford
// simulation and prints the routing tables and convergence statistics.
//
// Usage:
//
//	dbfsim -algebra rip -topo ring -n 6 -seed 1 -loss 0.2 -dup 0.1
//	dbfsim -algebra policy -policy 'addc(3); if (comm(3)) { lp+=2 }'
//
// Algebras: shortest, rip, widest, pv (path-tracked shortest), gr
// (Gao–Rexford tiers), policy (the Section 7 language; see -policy).
// Topologies: line, ring, grid, clique, star, random, fattree.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/algebras"
	"repro/internal/core"
	"repro/internal/gaorexford"
	"repro/internal/matrix"
	"repro/internal/pathalg"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		algebra = flag.String("algebra", "rip", "routing algebra: shortest|rip|widest|pv|gr|policy")
		topo    = flag.String("topo", "ring", "topology: line|ring|grid|clique|star|random|fattree")
		n       = flag.Int("n", 6, "number of nodes (fattree: k, nodes = 5k²/4)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		loss    = flag.Float64("loss", 0.1, "message loss probability")
		dup     = flag.Float64("dup", 0.05, "message duplication probability")
		delay   = flag.Int64("delay", 10, "max message delay (virtual ticks)")
		garbage = flag.Bool("garbage", false, "start from a random state instead of the clean state")
		polSrc  = flag.String("policy", "lp+=1",
			"policy program applied on every edge when -algebra policy (Section 7 syntax)")
		showTrace = flag.Bool("trace", false, "print the route-change timeline after the run")
	)
	flag.Parse()

	g := buildGraph(*topo, *n, *seed)
	cfg := simulate.Config{Seed: *seed, LossProb: *loss, DupProb: *dup, MaxDelay: *delay}
	if *showTrace {
		recorder = &trace.Recorder{}
	}

	switch *algebra {
	case "shortest":
		alg := algebras.ShortestPaths{}
		runNat[algebras.ShortestPaths](alg, topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1)), cfg, *garbage, *seed,
			[]algebras.NatInf{0, 1, 2, algebras.Inf})
	case "rip":
		alg := algebras.RIP()
		runNat[algebras.HopCount](alg, topology.BuildUniform[algebras.NatInf](g, alg.AddEdge(1)), cfg, *garbage, *seed, alg.Universe())
	case "widest":
		alg := algebras.WidestPaths{}
		rng := rand.New(rand.NewSource(*seed))
		adj := topology.Build[algebras.NatInf](g, func(i, j int) core.Edge[algebras.NatInf] {
			return alg.CapEdge(algebras.NatInf(1 + rng.Intn(9)))
		})
		runNat[algebras.WidestPaths](alg, adj, cfg, *garbage, *seed, []algebras.NatInf{0, 1, 5, algebras.Inf})
	case "pv":
		base := algebras.ShortestPaths{}
		alg := pathalg.New[algebras.NatInf](base)
		baseAdj := topology.BuildUniform[algebras.NatInf](g, base.AddEdge(1))
		adj := pathalg.LiftAdjacency(alg, baseAdj)
		type R = pathalg.Route[algebras.NatInf]
		start := matrix.Identity[R](alg, g.N)
		out := simulate.RunTraced[R](alg, adj, start, cfg, nil, nil, recorder)
		report[R](alg, adj, out)
	case "gr":
		alg := gaorexford.Algebra{MaxHops: 16}
		rng := rand.New(rand.NewSource(*seed))
		adj := topology.Build[gaorexford.Route](g, func(i, j int) core.Edge[gaorexford.Route] {
			// Orient relationships by node id: lower id = provider;
			// equal-tier links (adjacent ids) peer. This is arbitrary but
			// produces a valid GR instance on any graph.
			switch {
			case i == j-1 || j == i-1:
				return alg.Edge(gaorexford.PeerEdge)
			case i < j:
				return alg.Edge(gaorexford.CustomerEdge)
			default:
				return alg.Edge(gaorexford.ProviderEdge)
			}
		})
		_ = rng
		start := matrix.Identity[gaorexford.Route](alg, g.N)
		out := simulate.RunTraced[gaorexford.Route](alg, adj, start, cfg, nil, nil, recorder)
		report[gaorexford.Route](alg, adj, out)
	case "policy":
		pol, err := policy.ParsePolicy(*polSrc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		alg := policy.Algebra{}
		adj := topology.Build[policy.Route](g, func(i, j int) core.Edge[policy.Route] {
			return alg.Edge(i, j, pol)
		})
		fmt.Printf("policy on every edge: %s\n", pol)
		start := matrix.Identity[policy.Route](alg, g.N)
		if *garbage {
			rng := rand.New(rand.NewSource(*seed))
			start = matrix.RandomState(rng, g.N, func(rng *rand.Rand, _, _ int) policy.Route {
				return policy.RandomRoute(rng, g.N)
			})
		}
		out := simulate.RunTraced[policy.Route](alg, adj, start, cfg, nil, nil, recorder)
		report[policy.Route](alg, adj, out)
	default:
		fmt.Fprintf(os.Stderr, "unknown algebra %q\n", *algebra)
		os.Exit(2)
	}
}

// recorder, when non-nil, captures the run's event timeline for -trace.
var recorder *trace.Recorder

func buildGraph(topo string, n int, seed int64) topology.Graph {
	switch topo {
	case "line":
		return topology.Line(n)
	case "ring":
		return topology.Ring(n)
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		return topology.Grid(side, side)
	case "clique":
		return topology.Complete(n)
	case "star":
		return topology.Star(n)
	case "random":
		return topology.ErdosRenyi(rand.New(rand.NewSource(seed)), n, 0.3)
	case "fattree":
		g, _ := topology.FatTree(n)
		return g
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", topo)
		os.Exit(2)
		return topology.Graph{}
	}
}

func runNat[A core.Algebra[algebras.NatInf]](alg A, adj *matrix.Adjacency[algebras.NatInf],
	cfg simulate.Config, garbage bool, seed int64, universe []algebras.NatInf) {
	start := matrix.Identity[algebras.NatInf](alg, adj.N)
	if garbage {
		start = matrix.RandomStateFrom(rand.New(rand.NewSource(seed)), adj.N, universe)
	}
	out := simulate.RunTraced[algebras.NatInf](alg, adj, start, cfg, nil, nil, recorder)
	report[algebras.NatInf](alg, adj, out)
}

func report[R any](alg core.Algebra[R], adj *matrix.Adjacency[R], out simulate.Outcome[R]) {
	fmt.Println(out.Describe())
	stable := matrix.IsStable[R](alg, adj, out.Final)
	fmt.Printf("final state σ-stable: %v\n", stable)
	if adj.N <= 12 {
		fmt.Println("routing tables (row i = node i's best route to each destination):")
		fmt.Print(out.Final.Format(alg))
	} else {
		fmt.Printf("(%d nodes; tables suppressed, rerun with -n ≤ 12 to print them)\n", adj.N)
	}
	if recorder != nil {
		fmt.Println("\nroute-change timeline:")
		recorder.Timeline(os.Stdout, 40)
		recorder.Summary(os.Stdout)
	}
	if !out.Converged {
		os.Exit(1)
	}
}
