// Command algcheck verifies the Table 1 laws for the built-in routing
// algebras and prints the property matrix, exiting non-zero if any
// *required* law fails. It is the standalone version of experiment E1 for
// quick use while developing a new algebra.
//
// Usage:
//
//	algcheck [-algebra name]   (default: all)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algebras"
	"repro/internal/core"
	"repro/internal/gaorexford"
	"repro/internal/paths"
	"repro/internal/policy"
)

func main() {
	which := flag.String("algebra", "all", "shortest|longest|widest|reliable|rip|gr|med|policy|all")
	flag.Parse()

	exit := 0
	// med is broken by design (the Section 7 MED aside); its required-law
	// failure is the expected result, not an error.
	expectedBroken := map[string]bool{"med": true}
	check := func(name string, run func() []core.Report) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("\n%s\n", name)
		for _, rep := range run() {
			fmt.Printf("  %s\n", rep)
			if !rep.Holds && !expectedBroken[name] {
				for _, req := range core.RequiredProperties() {
					if rep.Property == req {
						exit = 1
					}
				}
			}
		}
	}

	natSample := []algebras.NatInf{0, 1, 2, 3, 5, 10, algebras.Inf}

	check("shortest", func() []core.Report {
		alg := algebras.ShortestPaths{}
		return core.CheckAll[algebras.NatInf](alg, core.Sample[algebras.NatInf]{
			Routes: natSample, Edges: []core.Edge[algebras.NatInf]{alg.AddEdge(1), alg.AddEdge(3)},
		})
	})
	check("longest", func() []core.Report {
		alg := algebras.LongestPaths{}
		return core.CheckAll[algebras.NatInf](alg, core.Sample[algebras.NatInf]{
			Routes: natSample, Edges: []core.Edge[algebras.NatInf]{alg.AddEdge(1), alg.AddEdge(3)},
		})
	})
	check("widest", func() []core.Report {
		alg := algebras.WidestPaths{}
		return core.CheckAll[algebras.NatInf](alg, core.Sample[algebras.NatInf]{
			Routes: natSample, Edges: []core.Edge[algebras.NatInf]{alg.CapEdge(2), alg.CapEdge(5)},
		})
	})
	check("reliable", func() []core.Report {
		alg := algebras.MostReliable{}
		return core.CheckAll[float64](alg, core.Sample[float64]{
			Routes: []float64{0, 0.25, 0.5, 0.75, 1},
			Edges:  []core.Edge[float64]{alg.MulEdge(0.5), alg.MulEdge(0.25)},
		})
	})
	check("rip", func() []core.Report {
		alg := algebras.RIP()
		return core.CheckAll[algebras.NatInf](alg, core.UniverseSample[algebras.NatInf](alg, alg,
			[]core.Edge[algebras.NatInf]{
				alg.AddEdge(1),
				alg.ConditionalEdge(1, algebras.DistanceAtMost(7)),
				alg.ConditionalEdge(1, algebras.DistanceEven()),
			}))
	})
	check("gr", func() []core.Report {
		alg := gaorexford.Algebra{MaxHops: 6}
		return core.CheckAll[gaorexford.Route](alg, core.UniverseSample[gaorexford.Route](alg, alg, alg.Edges()))
	})
	check("med", func() []core.Report {
		alg := algebras.MED{}
		a, b, c := alg.AssociativityCounterexample()
		return core.CheckAll[algebras.MEDRoute](alg, core.Sample[algebras.MEDRoute]{
			Routes: []algebras.MEDRoute{a, b, c},
			Edges:  []core.Edge[algebras.MEDRoute]{alg.Edge(1, 0, 1), alg.Edge(2, 3, 1)},
		})
	})
	check("policy", func() []core.Report {
		alg := policy.Algebra{}
		mkPath := func(ns ...int) policy.Route {
			return policy.Valid(uint32(len(ns)), policy.NewCommunitySet(policy.Community(ns[0])), pathOf(ns...))
		}
		routes := []policy.Route{
			policy.TrivialRoute, policy.InvalidRoute,
			mkPath(1, 0), mkPath(2, 0), mkPath(2, 1, 0), mkPath(3, 2, 0),
		}
		edges := []core.Edge[policy.Route]{
			alg.Edge(3, 1, policy.Identity()),
			alg.Edge(3, 1, policy.IncrPrefBy(2)),
			alg.Edge(3, 1, policy.If(policy.InComm(2), policy.Reject())),
		}
		return core.CheckAll[policy.Route](alg, core.Sample[policy.Route]{Routes: routes, Edges: edges})
	})

	os.Exit(exit)
}

func pathOf(ns ...int) paths.Path {
	return paths.FromNodes(ns...)
}
