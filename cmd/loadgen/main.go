// Command loadgen drives a dbfsimd daemon with sustained multi-tenant
// load and records the service's overload behaviour: how much was
// admitted first try, how much was shed (and how retriable the
// shedding was), completion latency percentiles, and — because every
// request runs the same scenario — whether all completions were
// bit-identical (unique_hashes must be 1).
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7117 -requests 300 -tenants 4 -out BENCH_pr9.json
//	loadgen -self -requests 300           # spawn an in-process daemon
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// defaultScenario is cheap enough to run hundreds of times and still
// exercises events and both phases of convergence.
const defaultScenario = `scenario loadgen
topo ring 8 rip
seed 11
horizon 300
at 60 linkdown 0 1
at 140 linkup 0 1
at 220 weight 3 2 3
`

type report struct {
	Bench       string `json:"bench"`
	GeneratedAt string `json:"generated_at"`
	Config      struct {
		Addr        string `json:"addr"`
		Requests    int    `json:"requests"`
		Tenants     int    `json:"tenants"`
		Concurrency int    `json:"concurrency"`
		SelfServe   bool   `json:"self_serve"`
		Workers     int    `json:"workers,omitempty"`
		Quantum     int    `json:"quantum,omitempty"`
		MaxInFlight int    `json:"max_inflight,omitempty"`
	} `json:"config"`
	AdmittedFirstTry int `json:"admitted_first_try"`
	Sheds            int `json:"sheds"`
	Completed        int `json:"completed"`
	Failed           int `json:"failed"`
	UniqueHashes     int `json:"unique_hashes"`
	PerTenant        map[string]*tenantStats `json:"per_tenant"`
	LatencyMS        struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	WallMS        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

type tenantStats struct {
	Completed int `json:"completed"`
	Sheds     int `json:"sheds"`
}

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr     = flag.String("addr", "", "daemon address (required unless -self)")
		selfSrv  = flag.Bool("self", false, "spawn an in-process daemon instead of dialling one")
		requests = flag.Int("requests", 300, "total runs to submit")
		tenants  = flag.Int("tenants", 4, "distinct tenants to spread the load over")
		conc     = flag.Int("concurrency", 64, "concurrent in-flight requests")
		workers  = flag.Int("workers", 2, "-self: daemon workers")
		quantum  = flag.Int("quantum", 64, "-self: preemption quantum")
		inflight = flag.Int("max-inflight", 4, "-self: per-tenant in-flight cap")
		scenFile = flag.String("scenario", "", "scenario file to submit (default: a built-in ring-8 flap)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	text := []byte(defaultScenario)
	if *scenFile != "" {
		b, err := os.ReadFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 2
		}
		text = b
	}

	target := *addr
	if *selfSrv {
		s, err := server.New(server.Config{
			Workers: *workers, Quantum: *quantum,
			DefaultQuota: server.Quota{MaxInFlight: *inflight},
			MaxTenants:   *tenants + 1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
		defer s.Close()
		target = s.Addr()
	}
	if target == "" {
		fmt.Fprintln(os.Stderr, "loadgen: need -addr or -self")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var (
		mu        sync.Mutex
		admitted  int
		sheds     int
		completed int
		failed    int
		hashes    = map[uint64]int{}
		latencies []float64
		perTenant = map[string]*tenantStats{}
	)
	for ti := 0; ti < *tenants; ti++ {
		perTenant[fmt.Sprintf("tenant%d", ti)] = &tenantStats{}
	}

	start := time.Now()
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			tenant := fmt.Sprintf("tenant%d", i%*tenants)
			c, err := server.DialClient(ctx, target, tenant)
			if err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			defer c.Close()
			t0 := time.Now()
			res, shed, err := c.RunRetry(ctx, fmt.Sprintf("run%d", i), text, 0)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			ts := perTenant[tenant]
			ts.Sheds += shed
			sheds += shed
			if shed == 0 {
				admitted++
			}
			if err != nil {
				failed++
				var ef *wire.ErrorFrame
				if errors.As(err, &ef) {
					fmt.Fprintf(os.Stderr, "loadgen: run%d (%s): %v\n", i, tenant, ef)
				} else {
					fmt.Fprintf(os.Stderr, "loadgen: run%d (%s): %v\n", i, tenant, err)
				}
				return
			}
			completed++
			ts.Completed++
			hashes[res.Hash]++
			latencies = append(latencies, float64(lat.Microseconds())/1000)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var rep report
	rep.Bench = "pr9-dbfsimd-loadgen"
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Config.Addr = target
	rep.Config.Requests = *requests
	rep.Config.Tenants = *tenants
	rep.Config.Concurrency = *conc
	rep.Config.SelfServe = *selfSrv
	if *selfSrv {
		rep.Config.Workers = *workers
		rep.Config.Quantum = *quantum
		rep.Config.MaxInFlight = *inflight
	}
	rep.AdmittedFirstTry = admitted
	rep.Sheds = sheds
	rep.Completed = completed
	rep.Failed = failed
	rep.UniqueHashes = len(hashes)
	rep.PerTenant = perTenant
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	rep.LatencyMS.P50 = pct(0.50)
	rep.LatencyMS.P95 = pct(0.95)
	rep.LatencyMS.P99 = pct(0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMS.Max = latencies[n-1]
	}
	rep.WallMS = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		rep.ThroughputRPS = float64(completed) / wall.Seconds()
	}

	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	os.Stdout.Write(b)

	if failed > 0 {
		return 1
	}
	if rep.UniqueHashes > 1 {
		fmt.Fprintf(os.Stderr, "loadgen: %d distinct hashes for one scenario — runs diverged\n", rep.UniqueHashes)
		return 1
	}
	return 0
}
