// The benchmark allocation gate: CI runs this test (opted in via
// BENCH_GATE=1) to assert that the steady-state allocations of the E5
// engine-convergence benchmark do not regress against the committed
// baseline in BENCH_pr6.json. It complements the bench smoke step, which
// only checks the suite still runs.
package repro_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/algebras"
	"repro/internal/engine"
	"repro/internal/matrix"
)

// benchBaseline mirrors the committed BENCH_*.json layout.
type benchBaseline struct {
	Results []struct {
		Name        string  `json:"name"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		// WarmAllocsPerOp is the steady-state (pooled-scratch) figure the
		// gate compares against; allocs_per_op averages the cold first
		// iteration in and would make the gate an order of magnitude
		// looser.
		WarmAllocsPerOp float64 `json:"warm_allocs_per_op"`
	} `json:"results"`
}

// gateSlack is how far above the committed warm allocs/op the gate
// tolerates: scheduling and GC timing jitter move the number a little, a
// regression of the pooled hot path (back towards allocation-per-run)
// moves it by an order of magnitude. Tightened from 3.0 once the
// columnar backend held the steady state at the same 9 allocs/op as the
// interface path — the warm figure has been stable across two PRs.
const gateSlack = 2.0

// TestE5EngineAllocGate measures steady-state (warm-pool) allocations of
// the E5 scenario and fails if they exceed gateSlack × the committed
// BENCH_pr6.json value. Opt-in via BENCH_GATE=1 — the measurement costs
// a few E5 runs, which is CI-step material, not unit-test material.
func TestE5EngineAllocGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") != "1" {
		t.Skip("set BENCH_GATE=1 to run the benchmark allocation gate")
	}
	raw, err := os.ReadFile("BENCH_pr6.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}
	budget := -1.0
	for _, r := range base.Results {
		if r.Name == "BenchmarkE5EngineConvergence" {
			budget = r.WarmAllocsPerOp
		}
	}
	if budget <= 0 {
		t.Fatal("BENCH_pr6.json has no BenchmarkE5EngineConvergence warm_allocs_per_op entry")
	}

	alg, adj, start, src := e5Scenario()
	eng := engine.New[algebras.NatInf](alg, adj, engine.Config{})
	defer eng.Close()
	// AllocsPerRun performs one warm-up call first, which populates the
	// engine's pooled scratch; the measured runs are the steady state.
	avg := testing.AllocsPerRun(2, func() {
		res := eng.Run(start, src)
		if _, ok := res.Converged(); !ok {
			t.Fatal("E5 engine run did not certify convergence")
		}
		if !matrix.IsStable[algebras.NatInf](alg, adj, res.Final()) {
			t.Fatal("E5 engine limit is not σ-stable")
		}
	})
	t.Logf("steady-state allocs/op = %.0f, committed baseline = %.0f (gate = %.0f)", avg, budget, budget*gateSlack)
	if avg > budget*gateSlack {
		t.Fatalf("E5 allocs/op regressed: %.0f > %.0f (%.1f × committed %.0f)",
			avg, budget*gateSlack, gateSlack, budget)
	}
}
